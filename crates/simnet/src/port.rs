//! Egress port scheduling: strict priority levels, Deficit Weighted Round
//! Robin within a level, and token-bucket shaping.
//!
//! The FlexPass switch configuration (§4.1) is expressed as:
//!
//! * Q0 (credits): strict priority level 0, token-bucket shaped to
//!   `w_q × CREDIT_RATE_FULL_FRACTION` of line rate, tiny static buffer.
//! * Q1 (FlexPass data) and Q2 (legacy): priority level 1, DWRR with weights
//!   `w_q` and `1 − w_q`.
//!
//! The scheduler is work conserving: while the shaped credit queue waits for
//! tokens, lower-priority data queues are served; if *only* shaped traffic is
//! pending, the port reports the next token-eligibility instant so the
//! simulator can schedule a wake-up.

use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::WireBytes;

use crate::arena::{PacketArena, PacketId};
use crate::audit;
use crate::consts::DATA_WIRE;
use crate::queue::{DropReason, Enqueue, PacketQueue, QueueConfig};

/// Scheduling attributes of one queue within a port.
#[derive(Clone, Copy, Debug)]
pub struct QueueSched {
    /// Strict priority level; 0 is served first.
    pub level: u8,
    /// DWRR weight among queues of the same level (relative, not normalized).
    pub weight: f64,
    /// Optional token-bucket shaper (rate, burst). Only supported on
    /// queues that are alone at their priority level (the credit queue).
    pub shaper: Option<(Rate, WireBytes)>,
}

impl QueueSched {
    /// A strict-priority queue at `level` with no shaping.
    pub fn strict(level: u8) -> Self {
        QueueSched {
            level,
            weight: 1.0,
            shaper: None,
        }
    }

    /// A DWRR queue at `level` with the given weight.
    pub fn weighted(level: u8, weight: f64) -> Self {
        assert!(weight > 0.0, "DWRR weight must be positive");
        QueueSched {
            level,
            weight,
            shaper: None,
        }
    }

    /// Adds a token-bucket shaper.
    pub fn shaped(mut self, rate: Rate, burst: WireBytes) -> Self {
        self.shaper = Some((rate, burst));
        self
    }
}

/// Full configuration of a port: line rate plus per-queue policy + schedule.
#[derive(Clone, Debug)]
pub struct PortConfig {
    /// Line rate.
    pub rate: Rate,
    /// Per-queue configuration, in queue-index order.
    pub queues: Vec<(QueueConfig, QueueSched)>,
}

impl PortConfig {
    /// A single plain FIFO at line rate (simple reference ports).
    pub fn single_fifo(rate: Rate) -> Self {
        PortConfig {
            rate,
            queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
        }
    }
}

/// What the scheduler decided on a service opportunity.
#[derive(Debug)]
pub enum Decision {
    /// Transmit this packet (already dequeued; ownership of the id passes
    /// to the caller, who releases it at delivery or drop).
    Send(PacketId),
    /// Nothing is eligible now, but a shaped queue becomes eligible at the
    /// given instant: wake the port then.
    WaitUntil(Time),
    /// No backlog at all.
    Idle,
}

/// Token-bucket units: one token is a "bit-nanosecond", the credit earned
/// by 1 bps over 1 ns. A byte costs `8 × 1e9` tokens.
const TOKENS_PER_BYTE: u128 = 8 * 1_000_000_000;

/// Token-bucket shaper with exact integer accounting.
///
/// Refilling over `dt` nanoseconds at `rate` bps adds `dt × rate` tokens;
/// transmitting `b` bytes spends `b ×` [`TOKENS_PER_BYTE`]. Keeping tokens
/// in bit-nanoseconds makes the bucket drift-free (no float rounding), so
/// `eligible_at` can compute the exact wake-up instant with one ceiling
/// division and repeated refill/spend cycles conserve credit bit-for-bit.
#[derive(Debug)]
struct Shaper {
    rate: Rate,
    burst: u128,
    tokens: u128,
    last: Time,
    audit_id: audit::ComponentId,
}

impl Shaper {
    fn new(rate: Rate, burst: WireBytes) -> Self {
        let burst = u128::from(burst.get()) * TOKENS_PER_BYTE;
        Shaper {
            rate,
            burst,
            tokens: burst,
            last: Time::ZERO,
            audit_id: audit::new_component_id(),
        }
    }

    /// Tokens needed to transmit `bytes`.
    fn need(bytes: WireBytes) -> u128 {
        u128::from(bytes.get()) * TOKENS_PER_BYTE
    }

    fn refill(&mut self, now: Time) {
        let dt = u128::from(now.saturating_since(self.last).as_nanos());
        self.tokens = (self.tokens + dt * u128::from(self.rate.as_bps())).min(self.burst);
        self.last = now;
        audit::shaper_tokens(self.audit_id, self.tokens, self.burst);
    }

    /// Consumes `need` tokens; caller must have checked availability.
    fn spend(&mut self, need: u128) {
        debug_assert!(self.tokens >= need, "shaper overspend");
        self.tokens -= need;
        audit::shaper_tokens(self.audit_id, self.tokens, self.burst);
    }

    fn eligible_at(&self, now: Time, need: u128) -> Time {
        if self.tokens >= need {
            return now;
        }
        if self.rate.as_bps() == 0 {
            return Time::MAX;
        }
        let deficit = need - self.tokens;
        let ns = deficit.div_ceil(u128::from(self.rate.as_bps()));
        now.saturating_add(TimeDelta::nanos(u64::try_from(ns).unwrap_or(u64::MAX)))
    }
}

#[derive(Debug)]
struct Level {
    /// Queue indices at this level, in configuration order.
    members: Vec<usize>,
    /// Round-robin pointer into `members`.
    pos: usize,
    /// Whether the queue under the pointer still needs its visit quantum.
    fresh: bool,
}

impl Level {
    /// Queue index under the round-robin pointer.
    fn current(&self) -> usize {
        *self
            .members
            .get(self.pos)
            .expect("pos stays within members")
    }

    /// Rotates the pointer to the next member and marks it fresh.
    fn advance(&mut self) {
        self.pos += 1;
        if self.pos >= self.members.len() {
            self.pos = 0;
        }
        self.fresh = true;
    }
}

/// One queue of a port together with all of its scheduler state. Keeping
/// the pieces in a single struct (instead of parallel `Vec`s indexed by
/// queue id) means one bounds check per service decision and no way for
/// the arrays to fall out of sync.
#[derive(Debug)]
struct QState {
    queue: PacketQueue,
    sched: QueueSched,
    shaper: Option<Shaper>,
    /// DWRR deficit counter, in wire bytes.
    deficit: f64,
    /// DWRR per-visit quantum, in wire bytes.
    quantum: f64,
}

/// Per-port transmit counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortCounters {
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Wire bytes transmitted.
    pub tx_bytes: WireBytes,
}

/// An egress port: a set of queues plus the scheduler state, attached to a
/// simplex link towards `peer`.
#[derive(Debug)]
pub struct Port {
    /// Line rate.
    pub rate: Rate,
    /// Peer node this port transmits to (set during topology wiring).
    pub peer: usize,
    /// Propagation delay of the attached link.
    pub prop: TimeDelta,
    qs: Vec<QState>,
    levels: Vec<Level>,
    /// End of the in-flight serialization, if transmitting.
    pub busy_until: Option<Time>,
    /// Earliest already-scheduled idle wake-up (dedup for shaper waits).
    pub pending_wake: Option<Time>,
    counters: PortCounters,
}

impl Port {
    /// Builds a port from its configuration. `peer`/`prop` are filled in by
    /// the topology wiring.
    pub fn new(cfg: &PortConfig) -> Self {
        assert!(!cfg.queues.is_empty(), "port needs at least one queue");
        let mut qs: Vec<QState> = cfg
            .queues
            .iter()
            .map(|&(qc, sched)| QState {
                queue: PacketQueue::new(qc),
                sched,
                shaper: sched.shaper.map(|(r, b)| Shaper::new(r, b)),
                deficit: 0.0,
                quantum: 0.0,
            })
            .collect();

        // Group queues into strict levels, ascending.
        let mut level_ids: Vec<u8> = qs.iter().map(|q| q.sched.level).collect();
        level_ids.sort_unstable();
        level_ids.dedup();
        let levels: Vec<Level> = level_ids
            .iter()
            .map(|&l| Level {
                members: qs
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.sched.level == l)
                    .map(|(i, _)| i)
                    .collect(),
                pos: 0,
                fresh: true,
            })
            .collect();

        // Shapers only on single-queue levels (covers every paper config).
        for level in &levels {
            if level.members.len() > 1 {
                for &i in &level.members {
                    let q = qs.get(i).expect("level members index queues");
                    assert!(
                        q.sched.shaper.is_none(),
                        "shaped queues must be alone at their priority level"
                    );
                }
            }
        }

        // DWRR quantum: proportional to weight, scaled so the largest weight
        // in a level gets one MTU per round.
        for level in &levels {
            let wmax = level
                .members
                .iter()
                .filter_map(|&i| qs.get(i))
                .map(|q| q.sched.weight)
                .fold(0.0_f64, f64::max);
            for &i in &level.members {
                let q = qs.get_mut(i).expect("level members index queues");
                // lint:allow(panic-path): f64 ratio; wmax >= weight > 0
                // (weights are asserted positive in QueueSched::weighted).
                q.quantum = (q.sched.weight / wmax * DATA_WIRE.as_f64()).max(1.0);
            }
        }

        Port {
            rate: cfg.rate,
            peer: usize::MAX,
            prop: TimeDelta::ZERO,
            qs,
            levels,
            busy_until: None,
            pending_wake: None,
            counters: PortCounters::default(),
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.qs.len()
    }

    /// Immutable access to a queue (metrics / admission checks).
    pub fn queue(&self, idx: usize) -> &PacketQueue {
        &self
            .qs
            .get(idx)
            .expect("queue index within num_queues")
            .queue
    }

    /// Sum of bytes across all queues.
    pub fn backlog_bytes(&self) -> WireBytes {
        self.qs.iter().map(|q| q.queue.bytes()).sum()
    }

    /// True if any queue holds packets.
    pub fn has_backlog(&self) -> bool {
        self.qs.iter().any(|q| !q.queue.is_empty())
    }

    /// Transmit counters.
    pub fn counters(&self) -> PortCounters {
        self.counters
    }

    /// Scheduling attributes of queue `idx`.
    pub fn sched(&self, idx: usize) -> &QueueSched {
        &self
            .qs
            .get(idx)
            .expect("queue index within num_queues")
            .sched
    }

    /// Offers the packet behind `id` to queue `qidx` applying that
    /// queue's own policies. Shared-buffer admission must have been
    /// checked by the caller. On `Err` the caller keeps the id.
    pub fn enqueue(
        &mut self,
        arena: &mut PacketArena,
        qidx: usize,
        id: PacketId,
    ) -> Result<(), DropReason> {
        let q = self
            .qs
            .get_mut(qidx)
            .expect("queue index within num_queues");
        match q.queue.offer(arena, id) {
            Enqueue::Admitted => Ok(()),
            Enqueue::Dropped(r) => Err(r),
        }
    }

    /// Serialization time of `bytes` at line rate.
    pub fn serialize(&self, bytes: WireBytes) -> TimeDelta {
        self.rate.serialize_wire(bytes)
    }

    /// Runs the scheduler for one service opportunity at `now`.
    pub fn next_packet(&mut self, arena: &mut PacketArena, now: Time) -> Decision {
        let mut wake: Option<Time> = None;
        let mut chosen: Option<usize> = None;
        for level in &mut self.levels {
            if let &[qi] = level.members.as_slice() {
                let q = self.qs.get_mut(qi).expect("level members index queues");
                let Some(head) = q.queue.head_bytes(arena) else {
                    continue; // empty queue
                };
                if let Some(shaper) = q.shaper.as_mut() {
                    shaper.refill(now);
                    let need = Shaper::need(head);
                    if shaper.tokens < need {
                        let at = shaper.eligible_at(now, need);
                        wake = Some(wake.map_or(at, |w: Time| w.min(at)));
                        // Work conserving: fall through to lower levels.
                        continue;
                    }
                    shaper.spend(need);
                }
                chosen = Some(qi);
                break;
            }
            if let Some(qi) = Self::dwrr_pick(level, &mut self.qs, arena) {
                chosen = Some(qi);
                break;
            }
        }
        match chosen {
            Some(qi) => self.serve(arena, qi),
            None => match wake {
                Some(t) => Decision::WaitUntil(t),
                None => Decision::Idle,
            },
        }
    }

    /// DWRR selection among the queues of `level`. Returns the queue to
    /// serve, or `None` if the level has no backlog.
    fn dwrr_pick(level: &mut Level, qs: &mut [QState], arena: &PacketArena) -> Option<usize> {
        // Progress bound: one full cycle adds `quantum` to every backlogged
        // queue's deficit, so the queue whose head needs the fewest
        // additional quanta is served within that many cycles. This is
        // exact for any head size and weight vector (+2 cycles of slack
        // for the rotation in progress), unlike a `MTU / min_quantum`
        // heuristic, which under-counts whenever a head packet is large
        // relative to its own queue's quantum (e.g. a jumbo frame on a
        // tiny-weight queue) and then trips the unreachable!() below.
        let min_rounds = level
            .members
            .iter()
            .filter_map(|&i| qs.get(i))
            .filter_map(|q| {
                let head = q.queue.head_bytes(arena)?.as_f64();
                let need = (head - q.deficit).max(0.0);
                // lint:allow(raw-cast): round count, not a byte quantity
                // lint:allow(panic-path): f64 ratio; quantum >= 1.0 by
                // construction in Port::new.
                Some((need / q.quantum).ceil() as usize)
            })
            .min()?; // no backlog at this level
        let max_passes = level.members.len() * (min_rounds + 2);
        for _ in 0..=max_passes {
            let qi = level.current();
            let q = qs.get_mut(qi).expect("level members index queues");
            let Some(head) = q.queue.head_bytes(arena) else {
                q.deficit = 0.0;
                level.advance();
                continue;
            };
            if level.fresh {
                q.deficit += q.quantum;
                level.fresh = false;
            }
            if q.deficit >= head.as_f64() {
                return Some(qi);
            }
            level.advance();
        }
        // lint:allow(panic-path): progress bound proven above; a trip here
        // is a scheduler logic bug that must abort the run.
        unreachable!("DWRR failed to make progress");
    }

    /// Dequeues from `qi`, updating deficits and counters.
    fn serve(&mut self, arena: &mut PacketArena, qi: usize) -> Decision {
        let q = self
            .qs
            .get_mut(qi)
            .expect("served queue index within num_queues");
        let id = q.queue.dequeue(arena).expect("serve on empty queue");
        let wire = arena.get(id).expect("served id is live").wire;
        let size = wire.as_f64();
        // Update DWRR state if this queue shares its level.
        let level = self
            .levels
            .iter_mut()
            .find(|l| l.members.contains(&qi))
            .expect("queue belongs to a level");
        if level.members.len() > 1 {
            q.deficit -= size;
            let advance = match q.queue.head_bytes(arena) {
                None => {
                    q.deficit = 0.0;
                    true
                }
                Some(next_head) => q.deficit < next_head.as_f64(),
            };
            if advance {
                level.advance();
            }
        }
        self.counters.tx_pkts += 1;
        self.counters.tx_bytes += wire;
        Decision::Send(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{CTRL_WIRE, DATA_HEADER_WIRE};
    use crate::packet::{CreditInfo, DataInfo, Packet, Payload, Subflow, TrafficClass};
    use flexpass_simcore::units::Bytes;

    /// Decision with the sent packet copied out of the arena, so tests can
    /// assert on packet contents directly.
    #[derive(Debug)]
    enum Out {
        Send(Packet),
        WaitUntil(Time),
        Idle,
    }

    fn enq(
        port: &mut Port,
        a: &mut PacketArena,
        qidx: usize,
        pkt: Packet,
    ) -> Result<(), DropReason> {
        let id = a.acquire(pkt);
        port.enqueue(a, qidx, id).inspect_err(|_| {
            a.release(id);
        })
    }

    fn next(port: &mut Port, a: &mut PacketArena, now: Time) -> Out {
        match port.next_packet(a, now) {
            Decision::Send(id) => Out::Send(a.release(id).expect("sent id is live")),
            Decision::WaitUntil(t) => Out::WaitUntil(t),
            Decision::Idle => Out::Idle,
        }
    }

    fn data(wire: u64) -> Packet {
        Packet::new(
            1,
            0,
            1,
            WireBytes::new(wire),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Only,
                payload: Bytes::new(wire.saturating_sub(DATA_HEADER_WIRE.get())),
                retx: false,
            }),
        )
    }

    fn credit() -> Packet {
        Packet::new(
            2,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        )
    }

    fn drain(port: &mut Port, a: &mut PacketArena, now: Time, n: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        for _ in 0..n {
            match next(port, a, now) {
                Out::Send(p) => out.push(p),
                _ => break,
            }
        }
        out
    }

    #[test]
    fn strict_priority_order() {
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::strict(0)),
                (QueueConfig::plain(), QueueSched::strict(1)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        enq(&mut port, &mut a, 1, data(DATA_WIRE.get())).unwrap();
        enq(&mut port, &mut a, 0, data(100)).unwrap();
        let out = drain(&mut port, &mut a, Time::ZERO, 2);
        assert_eq!(out[0].wire, WireBytes::new(100));
        assert_eq!(out[1].wire, DATA_WIRE);
    }

    #[test]
    fn dwrr_equal_weights_alternate() {
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, 0.5)),
                (QueueConfig::plain(), QueueSched::weighted(0, 0.5)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        for _ in 0..10 {
            enq(&mut port, &mut a, 0, data(DATA_WIRE.get())).unwrap();
            enq(&mut port, &mut a, 1, data(538)).unwrap();
        }
        // Byte share, not packet share, must be balanced: queue 1's packets
        // are smaller so it should send ~2.8x as many packets.
        let mut bytes = [0u64; 2];
        let mut served = 0;
        while let Out::Send(p) = next(&mut port, &mut a, Time::ZERO) {
            let qi = if p.wire == DATA_WIRE { 0 } else { 1 };
            bytes[qi] += p.wire.get();
            served += 1;
            if served > 14 {
                break;
            }
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((0.6..1.7).contains(&ratio), "byte ratio {ratio}");
    }

    #[test]
    fn dwrr_weight_ratio_converges() {
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, 0.4)),
                (QueueConfig::plain(), QueueSched::weighted(0, 0.6)),
            ],
        };
        // Use distinguishable sizes close enough to be fair by bytes.
        let mut counts = [0u64; 2];
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        for _ in 0..1000 {
            enq(&mut port, &mut a, 0, data(1537)).unwrap();
            enq(&mut port, &mut a, 1, data(DATA_WIRE.get())).unwrap();
        }
        for _ in 0..1000 {
            match next(&mut port, &mut a, Time::ZERO) {
                Out::Send(p) => {
                    if p.wire == WireBytes::new(1537) {
                        counts[0] += 1
                    } else {
                        counts[1] += 1
                    }
                }
                _ => break,
            }
        }
        let share = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((share - 0.4).abs() < 0.03, "queue-0 share {share}");
    }

    #[test]
    fn work_conservation_under_shaped_credit_queue() {
        // Credit queue shaped to a tiny rate; data must flow meanwhile.
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (
                    QueueConfig::capped(WireBytes::new(1_000)),
                    QueueSched::strict(0).shaped(Rate::from_mbps(1), CTRL_WIRE),
                ),
                (QueueConfig::plain(), QueueSched::strict(1)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        let t0 = Time::from_millis(1);
        // Exhaust the initial token burst with one credit.
        enq(&mut port, &mut a, 0, credit()).unwrap();
        match next(&mut port, &mut a, t0) {
            Out::Send(p) => assert_eq!(p.wire, CTRL_WIRE),
            other => panic!("expected credit send, got {other:?}"),
        }
        // Now the bucket is empty; a queued credit must wait but data flows.
        enq(&mut port, &mut a, 0, credit()).unwrap();
        enq(&mut port, &mut a, 1, data(DATA_WIRE.get())).unwrap();
        match next(&mut port, &mut a, t0) {
            Out::Send(p) => assert_eq!(p.wire, DATA_WIRE),
            other => panic!("expected data send, got {other:?}"),
        }
        // Only the credit remains: scheduler reports the wake time.
        match next(&mut port, &mut a, t0) {
            Out::WaitUntil(t) => {
                // 84 bytes at 1 Mbps = 672 us.
                let dt = t - t0;
                assert!(
                    (dt.as_micros_f64() - 672.0).abs() < 1.0,
                    "wake after {dt:?}"
                );
                // At the wake time the credit becomes eligible.
                match next(&mut port, &mut a, t) {
                    Out::Send(p) => assert_eq!(p.wire, CTRL_WIRE),
                    other => panic!("expected credit after wait, got {other:?}"),
                }
            }
            other => panic!("expected WaitUntil, got {other:?}"),
        }
    }

    #[test]
    fn dwrr_serves_jumbo_from_tiny_weight_queue() {
        // Regression: the old pass bound, n * (ceil(MTU / min_quantum) + 2),
        // under-counts whenever the head packet needs more rounds than an
        // MTU would relative to its own queue's quantum. A 9000-byte jumbo
        // on a weight-0.001 queue (quantum 1.538) needs ~5852 rounds; the
        // old bound allowed ~1002 and hit the unreachable!() panic.
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, 0.001)),
                (QueueConfig::plain(), QueueSched::weighted(0, 1.0)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        enq(&mut port, &mut a, 0, data(9_000)).unwrap();
        match next(&mut port, &mut a, Time::ZERO) {
            Out::Send(p) => assert_eq!(p.wire, WireBytes::new(9_000)),
            other => panic!("expected jumbo send, got {other:?}"),
        }
        assert!(!port.has_backlog());
    }

    #[test]
    fn idle_when_empty() {
        let mut port = Port::new(&PortConfig::single_fifo(Rate::from_gbps(10)));
        let mut a = PacketArena::new();
        assert!(matches!(next(&mut port, &mut a, Time::ZERO), Out::Idle));
        assert!(!port.has_backlog());
    }

    #[test]
    fn shaper_rate_enforced_over_time() {
        // Drain credits as fast as the scheduler lets us and verify the
        // long-run rate matches the shaper.
        let rate = Rate::from_mbps(100);
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![(
                QueueConfig::plain(),
                QueueSched::strict(0).shaped(rate, CTRL_WIRE * 2),
            )],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        for _ in 0..1000 {
            enq(&mut port, &mut a, 0, credit()).unwrap();
        }
        let mut now = Time::ZERO;
        let mut sent = 0u64;
        let mut last = Time::ZERO;
        while sent < 1000 {
            match next(&mut port, &mut a, now) {
                Out::Send(_) => {
                    sent += 1;
                    last = now;
                }
                Out::WaitUntil(t) => now = t,
                Out::Idle => break,
            }
        }
        let achieved_bps = (1000.0 - 2.0) * CTRL_WIRE.as_f64() * 8.0 / last.as_secs_f64();
        let target = rate.as_bps() as f64;
        assert!(
            (achieved_bps - target).abs() / target < 0.01,
            "achieved {achieved_bps} vs {target}"
        );
    }
}
