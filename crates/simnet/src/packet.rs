//! The packet model: flows, traffic classes, colors, and transport headers.

use flexpass_simcore::rng::symmetric_flow_hash;
use flexpass_simcore::time::Time;
use flexpass_simcore::units::{Bytes, WireBytes};

/// Globally unique flow identifier.
pub type FlowId = u64;

/// Host index (position in the topology's host list).
pub type HostId = usize;

/// One flow to be simulated: `size` application bytes from `src` to `dst`
/// starting at `start`. `tag` is an opaque label used by metrics to group
/// flows (e.g. "legacy DCTCP" vs "upgraded FlexPass"); `fg` marks foreground
/// (incast) flows in mixed-traffic scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Unique id; also the ECMP hash salt so both directions share a path.
    pub id: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes to transfer.
    pub size: Bytes,
    /// Flow arrival time.
    pub start: Time,
    /// Metrics grouping label (scheme-defined).
    pub tag: u32,
    /// Foreground (incast) flow marker.
    pub fg: bool,
}

impl FlowSpec {
    /// Symmetric ECMP path hash for this flow.
    pub fn path_hash(&self) -> u64 {
        symmetric_flow_hash(self.src as u64, self.dst as u64, self.id)
    }
}

/// Traffic class — the simulator's stand-in for a DSCP value. Switches map
/// classes to egress queues via their [`crate::switch::SwitchProfile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// ExpressPass / FlexPass credit packets (Q0: strict priority, shaped).
    Credit,
    /// New-transport data packets (Q1 under FlexPass / oWF).
    NewData,
    /// New-transport control packets (ACKs, credit requests; Q1, green).
    NewCtrl,
    /// Legacy reactive traffic, data and ACKs (Q2).
    Legacy,
}

/// Drop-precedence color for selective dropping (§5: color-aware dropping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Color {
    /// Protected: dropped only when the whole queue/buffer overflows.
    Green,
    /// Droppable: dropped once the per-queue red-byte threshold is exceeded.
    Red,
}

/// Which FlexPass sub-flow a data packet belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subflow {
    /// Credit-scheduled sub-flow (ExpressPass control loop).
    Proactive,
    /// Opportunistic, window-clocked sub-flow (DCTCP control loop).
    Reactive,
    /// Single-loop transports (plain DCTCP / ExpressPass / Homa).
    Only,
}

/// Data packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataInfo {
    /// Per-flow sequence number, in packets, used for reassembly.
    pub flow_seq: u32,
    /// Per-sub-flow sequence number, in packets, used for loss detection.
    pub sub_seq: u32,
    /// Sub-flow the packet was sent on.
    pub sub: Subflow,
    /// Application bytes carried.
    pub payload: Bytes,
    /// True if this is a retransmission (any kind).
    pub retx: bool,
}

/// Up to this many SACK ranges ride in each ACK.
pub const MAX_SACK: usize = 3;

/// ACK header (cumulative + selective acknowledgment, per sub-flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckInfo {
    /// Sub-flow this ACK belongs to.
    pub sub: Subflow,
    /// Next expected `sub_seq` (cumulative).
    pub cum: u32,
    /// SACK ranges `[lo, hi)` in `sub_seq` space, above `cum`.
    pub sack: [(u32, u32); MAX_SACK],
    /// Number of valid entries in `sack`.
    pub sack_n: u8,
    /// ECN echo: the acknowledged data packet carried a CE mark.
    pub ece: bool,
    /// `flow_seq` of the data packet that triggered this ACK (receiver-side
    /// dedup/report aid).
    pub acked_flow_seq: u32,
}

/// Credit packet header (ExpressPass).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditInfo {
    /// Monotonic credit index, used to measure credit loss in the feedback
    /// loop.
    pub idx: u32,
}

/// Homa-style grant header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrantInfo {
    /// Grant authorizes transmission of packets with `sub_seq < upto`.
    pub upto: u32,
    /// Network priority the granted packets should use.
    pub prio: u8,
}

/// Transport payload of a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Application data.
    Data(DataInfo),
    /// Acknowledgment.
    Ack(AckInfo),
    /// ExpressPass credit.
    Credit(CreditInfo),
    /// Request to start sending credits (carries the flow size in packets).
    CreditReq {
        /// Total flow length in packets.
        pkts: u32,
    },
    /// Tells the receiver to stop sending credits (sender finished).
    CreditStop,
    /// Homa grant.
    Grant(GrantInfo),
}

/// A simulated packet. Kept small and `Copy` (no heap allocations) as
/// millions of these flow through the event queue.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// On-wire size (serialization + buffer occupancy).
    pub wire: WireBytes,
    /// Traffic class (DSCP analog) for queue mapping.
    pub class: TrafficClass,
    /// Drop-precedence color.
    pub color: Color,
    /// Whether the packet is ECN-capable.
    pub ecn_capable: bool,
    /// Congestion Experienced mark (set by switches).
    pub ecn_ce: bool,
    /// Homa priority level (0 = highest); unused by other transports.
    pub prio: u8,
    /// Symmetric ECMP hash (identical for both flow directions).
    pub path_hash: u64,
    /// Transport header.
    pub payload: Payload,
}

impl Packet {
    /// Builds a packet for `flow` travelling `src -> dst`.
    ///
    /// The ECMP `path_hash` is derived symmetrically from the endpoints and
    /// flow id, so ACK/credit packets built with swapped `src`/`dst` follow
    /// the same fabric path in reverse.
    pub fn new(
        flow: FlowId,
        src: HostId,
        dst: HostId,
        wire: WireBytes,
        class: TrafficClass,
        payload: Payload,
    ) -> Packet {
        Packet {
            flow,
            src,
            dst,
            wire,
            class,
            color: Color::Green,
            ecn_capable: false,
            ecn_ce: false,
            prio: 0,
            path_hash: symmetric_flow_hash(src as u64, dst as u64, flow),
            payload,
        }
    }

    /// Inert filler for arena slots that have never held a real packet.
    pub(crate) fn placeholder() -> Packet {
        Packet::new(
            0,
            0,
            0,
            WireBytes::ZERO,
            TrafficClass::NewCtrl,
            Payload::CreditStop,
        )
    }

    /// Marks the packet red (subject to selective dropping).
    pub fn red(mut self) -> Packet {
        self.color = Color::Red;
        self
    }

    /// Marks the packet ECN-capable.
    pub fn ecn(mut self) -> Packet {
        self.ecn_capable = true;
        self
    }

    /// Sets the Homa-style priority.
    pub fn with_prio(mut self, p: u8) -> Packet {
        self.prio = p;
        self
    }

    /// True for data-bearing packets.
    pub fn is_data(&self) -> bool {
        matches!(self.payload, Payload::Data(_))
    }

    /// Application bytes carried (zero for control packets).
    pub fn payload_bytes(&self) -> Bytes {
        match self.payload {
            Payload::Data(d) => d.payload,
            _ => Bytes::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{data_wire_bytes, CTRL_WIRE};

    fn data_pkt(flow: FlowId, src: HostId, dst: HostId) -> Packet {
        Packet::new(
            flow,
            src,
            dst,
            data_wire_bytes(Bytes::new(1460)),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Proactive,
                payload: Bytes::new(1460),
                retx: false,
            }),
        )
    }

    #[test]
    fn path_hash_symmetric_across_directions() {
        let fwd = data_pkt(7, 3, 9);
        let rev = Packet::new(
            7,
            9,
            3,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        );
        assert_eq!(fwd.path_hash, rev.path_hash);
    }

    #[test]
    fn builders_set_flags() {
        let p = data_pkt(1, 0, 1).red().ecn().with_prio(3);
        assert_eq!(p.color, Color::Red);
        assert!(p.ecn_capable);
        assert!(!p.ecn_ce);
        assert_eq!(p.prio, 3);
        assert!(p.is_data());
        assert_eq!(p.payload_bytes(), Bytes::new(1460));
    }

    #[test]
    fn flow_spec_hash_matches_packet_hash() {
        let spec = FlowSpec {
            id: 42,
            src: 5,
            dst: 17,
            size: Bytes::new(1_000_000),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        };
        let p = data_pkt(42, 5, 17);
        assert_eq!(spec.path_hash(), p.path_hash);
    }

    #[test]
    fn control_packets_have_no_payload_bytes() {
        let p = Packet::new(
            1,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::CreditStop,
        );
        assert!(!p.is_data());
        assert_eq!(p.payload_bytes(), Bytes::ZERO);
    }
}
