//! Generation-indexed packet arena: the hot datapath's only packet store.
//!
//! Every in-flight [`Packet`] lives in one slab slot and is addressed by a
//! [`PacketId`] — a `(u32 index, u32 generation)` pair. Releasing a slot
//! bumps its generation, so any id minted before the release can never
//! match again: stale access and double-release are rejected by a plain
//! integer comparison instead of corrupting a reused slot.
//!
//! The same `next` field that threads the free list through unused slots
//! threads the intrusive FIFO of [`crate::queue::PacketQueue`] through
//! live ones — a queued packet's successor link costs no allocation and no
//! separate node. The slab is preallocated by
//! [`crate::sim::Sim::with_flow_capacity`] from the topology's queue
//! capacity hints; post-warmup growth is telemetry ([`PacketArena::grows`])
//! that the zero-alloc gate watches.
//!
//! Lifecycle: `acquire` (endpoint send) → enqueue (NIC/switch queue links
//! the id) → dequeue (port serves the id) → `release` (deliver or drop
//! copies the `Copy` packet out for observers, then frees the slot).

use crate::packet::Packet;

/// Sentinel index: "no slot". Doubles as the free-list and FIFO terminator.
const NIL: u32 = u32::MAX;

/// Handle to a live packet in a [`PacketArena`].
///
/// Ids are plain data (8 bytes, `Copy`); holding one confers no borrow.
/// An id is *live* from `acquire` until the matching `release`; after
/// that, every arena operation on it returns `None` (the slot's
/// generation has moved on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketId {
    idx: u32,
    gen: u32,
}

impl PacketId {
    /// Slot index, for diagnostics only — never a substitute for the id.
    pub fn index(self) -> u32 {
        self.idx
    }

    /// Generation the id was minted under.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

#[derive(Debug)]
struct Slot {
    /// Current generation. An id matches only while `id.gen == gen`;
    /// `release` bumps this, retiring every outstanding copy of the id.
    gen: u32,
    /// Free-list link (slot free) or FIFO successor (slot live and
    /// queued). `NIL` terminates both.
    next: u32,
    pkt: Packet,
}

/// Preallocated slab of packets addressed by generation-checked ids.
#[derive(Debug)]
pub struct PacketArena {
    slots: Vec<Slot>,
    /// Head of the free list (`NIL` when every slot is live).
    free: u32,
    live: usize,
    high_water: usize,
    grows: u64,
}

impl Default for PacketArena {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketArena {
    /// An empty arena; slots are added on demand. Prefer
    /// [`PacketArena::with_capacity`] on the datapath.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Preallocate `n` slots so the first `n` concurrent packets cost no
    /// heap traffic.
    pub fn with_capacity(n: usize) -> Self {
        let mut a = PacketArena {
            slots: Vec::with_capacity(n),
            free: NIL,
            live: 0,
            high_water: 0,
            grows: 0,
        };
        a.grow_to(n);
        a.grows = 0;
        a
    }

    /// Extend the slab to at least `n` slots, pushing the new slots onto
    /// the free list. Cold path: construction and overflow only.
    fn grow_to(&mut self, n: usize) {
        while self.slots.len() < n {
            let idx = self.slots.len() as u32;
            // lint:allow(alloc-in-datapath): slab growth is the cold
            // overflow path; steady state never reaches it.
            self.slots.push(Slot {
                gen: 0,
                next: self.free,
                pkt: Packet::placeholder(),
            });
            self.free = idx;
        }
    }

    /// Store `pkt` in a free slot and mint the id for it.
    pub fn acquire(&mut self, pkt: Packet) -> PacketId {
        if self.free == NIL {
            self.grows += 1;
            let want = self.slots.len().saturating_add(1);
            self.grow_to(want);
        }
        let idx = self.free;
        let slot = self
            .slots
            .get_mut(idx as usize)
            .expect("free-list head indexes an existing slot");
        self.free = slot.next;
        slot.next = NIL;
        slot.pkt = pkt;
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        PacketId { idx, gen: slot.gen }
    }

    /// Free the slot behind `id`, returning the packet it held. `None` if
    /// the id is stale (already released, or the slot was reused): the
    /// generation check makes double-release a visible no-op instead of a
    /// corruption.
    pub fn release(&mut self, id: PacketId) -> Option<Packet> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        // Bump first: from here on every copy of `id` is dead.
        slot.gen = slot.gen.wrapping_add(1);
        let pkt = slot.pkt;
        slot.next = self.free;
        self.free = id.idx;
        self.live -= 1;
        Some(pkt)
    }

    /// The packet behind `id`, or `None` if the id is stale.
    pub fn get(&self, id: PacketId) -> Option<&Packet> {
        let slot = self.slots.get(id.idx as usize)?;
        if slot.gen == id.gen {
            Some(&slot.pkt)
        } else {
            None
        }
    }

    /// Mutable access to the packet behind `id` (e.g. ECN marking in the
    /// queue), or `None` if the id is stale.
    pub fn get_mut(&mut self, id: PacketId) -> Option<&mut Packet> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen == id.gen {
            Some(&mut slot.pkt)
        } else {
            None
        }
    }

    /// Clear the FIFO successor of a live `of` (it becomes a queue tail).
    pub(crate) fn clear_next(&mut self, of: PacketId) {
        let slot = self
            .slots
            .get_mut(of.idx as usize)
            .filter(|s| s.gen == of.gen)
            .expect("intrusive link target is a live id");
        slot.next = NIL;
    }

    /// Link live `next` as the FIFO successor of live `of`.
    pub(crate) fn set_next(&mut self, of: PacketId, next: PacketId) {
        debug_assert!(self.get(next).is_some(), "successor must be live");
        let slot = self
            .slots
            .get_mut(of.idx as usize)
            .filter(|s| s.gen == of.gen)
            .expect("intrusive link target is a live id");
        slot.next = next.idx;
    }

    /// The FIFO successor of live `of`, as a full id (the successor's
    /// current generation — sound because a queued packet is live by the
    /// queue's ownership invariant).
    pub(crate) fn next_of(&self, of: PacketId) -> Option<PacketId> {
        let slot = self
            .slots
            .get(of.idx as usize)
            .filter(|s| s.gen == of.gen)
            .expect("intrusive link target is a live id");
        if slot.next == NIL {
            return None;
        }
        let nslot = self
            .slots
            .get(slot.next as usize)
            .expect("intrusive links stay inside the slab");
        Some(PacketId {
            idx: slot.next,
            gen: nslot.gen,
        })
    }

    /// Packets currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most packets ever live at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Slots in the slab (free + live).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Post-construction slab growth events. Zero in steady state once
    /// the arena is sized to the workload.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Release every id in `ids` (drained in order) and append the
    /// packets to `out`. Test-harness convenience mirroring the
    /// simulator's flush order; stale ids are skipped.
    pub fn drain_into(&mut self, ids: &mut Vec<PacketId>, out: &mut Vec<Packet>) {
        for id in ids.drain(..) {
            if let Some(pkt) = self.release(id) {
                out.push(pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::data_wire_bytes;
    use crate::packet::{DataInfo, Payload, Subflow, TrafficClass};
    use flexpass_simcore::rng::SimRng;
    use flexpass_simcore::units::Bytes;

    fn pkt(seq: u32) -> Packet {
        Packet::new(
            7,
            0,
            1,
            data_wire_bytes(Bytes::new(1000)),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: seq,
                sub_seq: seq,
                sub: Subflow::Proactive,
                payload: Bytes::new(1000),
                retx: false,
            }),
        )
    }

    fn seq_of(p: &Packet) -> u32 {
        match p.payload {
            Payload::Data(d) => d.flow_seq,
            _ => u32::MAX,
        }
    }

    #[test]
    fn acquire_release_roundtrip() {
        let mut a = PacketArena::with_capacity(4);
        assert_eq!(a.capacity(), 4);
        let id = a.acquire(pkt(3));
        assert_eq!(a.live(), 1);
        assert_eq!(a.get(id).map(seq_of), Some(3));
        let back = a.release(id).expect("live id releases");
        assert_eq!(seq_of(&back), 3);
        assert_eq!(a.live(), 0);
        assert_eq!(a.grows(), 0, "preallocated arena never grew");
    }

    #[test]
    fn stale_id_rejected_after_release_and_reuse() {
        let mut a = PacketArena::with_capacity(1);
        let first = a.acquire(pkt(1));
        assert!(a.release(first).is_some());
        // Double release is a visible no-op.
        assert!(a.release(first).is_none());
        // The slot is reused under a new generation; the stale id still
        // misses.
        let second = a.acquire(pkt(2));
        assert_eq!(second.index(), first.index(), "slot reused");
        assert_ne!(second.generation(), first.generation());
        assert!(a.get(first).is_none());
        assert!(a.get_mut(first).is_none());
        assert_eq!(a.get(second).map(seq_of), Some(2));
        assert!(a.release(first).is_none());
        assert_eq!(a.live(), 1, "stale release must not free the reused slot");
    }

    /// Property: under random interleaved acquire/release, no two live ids
    /// ever share a slot, every live id resolves, and every retired id is
    /// rejected. Deterministic pseudo-random exercise via [`SimRng`].
    #[test]
    fn no_two_live_ids_share_a_slot() {
        let mut rng = SimRng::new(0xA4E7A);
        let mut a = PacketArena::with_capacity(8);
        let mut live: Vec<PacketId> = Vec::new();
        let mut retired: Vec<PacketId> = Vec::new();
        for step in 0..4000u32 {
            if live.is_empty() || rng.chance(0.55) {
                live.push(a.acquire(pkt(step)));
            } else {
                let pick = rng.index(live.len());
                let id = live.swap_remove(pick);
                assert!(a.release(id).is_some(), "live id must release");
                retired.push(id);
            }
            // No two live ids share a slot index.
            let mut idxs: Vec<u32> = live.iter().map(|i| i.index()).collect();
            idxs.sort_unstable();
            let before = idxs.len();
            idxs.dedup();
            assert_eq!(idxs.len(), before, "duplicate live slot at step {step}");
            assert_eq!(a.live(), live.len());
            // Spot-check stale rejection as slots get reused.
            if let Some(old) = retired.last() {
                assert!(a.get(*old).is_none(), "retired id resolved at step {step}");
            }
        }
        for id in &live {
            assert!(a.get(*id).is_some());
        }
        for id in &retired {
            assert!(a.get(*id).is_none());
            assert!(a.release(*id).is_none());
        }
    }

    #[test]
    fn grow_on_demand_counts_growth() {
        let mut a = PacketArena::with_capacity(2);
        let ids: Vec<PacketId> = (0..5).map(|i| a.acquire(pkt(i))).collect();
        assert_eq!(a.live(), 5);
        assert_eq!(a.grows(), 3, "three acquires missed the preallocation");
        assert!(a.capacity() >= 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(a.get(*id).map(seq_of), Some(i as u32));
        }
    }

    #[test]
    fn intrusive_links_thread_through_slots() {
        let mut a = PacketArena::with_capacity(4);
        let x = a.acquire(pkt(0));
        let y = a.acquire(pkt(1));
        a.clear_next(x);
        assert_eq!(a.next_of(x), None);
        a.set_next(x, y);
        a.clear_next(y);
        assert_eq!(a.next_of(x), Some(y));
        assert_eq!(a.next_of(y), None);
    }

    #[test]
    fn drain_into_releases_in_order() {
        let mut a = PacketArena::with_capacity(4);
        let mut ids = vec![a.acquire(pkt(10)), a.acquire(pkt(11))];
        let mut out = Vec::new();
        a.drain_into(&mut ids, &mut out);
        assert!(ids.is_empty());
        assert_eq!(out.iter().map(seq_of).collect::<Vec<_>>(), [10, 11]);
        assert_eq!(a.live(), 0);
    }
}
