//! The partitioned parallel engine: conservative windowed synchronization
//! over the per-domain simulators a [`Partition`] produces.
//!
//! # Protocol
//!
//! Each domain runs an ordinary [`Sim`] over its slice of the fabric. The
//! engine advances all domains in lock-step windows. Per window, every
//! domain thread:
//!
//! 1. waits at a barrier (making the previous window's cross-domain
//!    sends visible),
//! 2. drains its inboxes in ascending sender-domain order (each channel
//!    is FIFO, so the injection order — and therefore calendar tie order
//!    for same-instant arrivals — is deterministic),
//! 3. publishes its earliest pending event time into a shared minimum,
//!    plus its completion/event counters,
//! 4. waits at a second barrier (the minimum is now final),
//! 5. computes the same run/stop decision every other domain computes
//!    from the same shared snapshot, then processes every local event
//!    strictly before `horizon = t_min + lookahead`,
//! 6. pushes the packets that crossed a cut into the destination
//!    domain's channel, stamped with their arrival instant.
//!
//! Soundness: an event at `t ≥ t_min` in any domain can influence another
//! domain no earlier than `t + lookahead ≥ horizon` (the cut's minimum
//! link propagation), so events before the horizon are causally closed —
//! the classic conservative null-message guarantee, here enforced by a
//! global window barrier instead of per-channel null messages. Messages
//! generated inside window `w` carry arrival times `≥ horizon_w` and are
//! injected at the top of window `w+1`, before the next minimum is taken.
//!
//! # Determinism
//!
//! Runs are deterministic for a fixed domain count: the window sequence
//! is a pure function of event times, inbox drain order is fixed, and
//! each domain's intra-window execution is the serial engine's. Results
//! across *different* domain counts agree up to calendar tie order of
//! same-instant events on different sides of a cut (and exactly, for the
//! figure workloads CI byte-diffs).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Barrier, OnceLock};

use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simcore::ProgressProbe;

use crate::audit;
use crate::packet::{FlowSpec, Packet};
use crate::partition::Partition;
use crate::sim::{FlowRole, NetObserver, NodeId, PartitionCtx, Sim, TransportFactory};

/// A packet in flight across a domain cut: `(arrival instant, destination
/// node, packet value)`. The packet left the sender domain's arena and
/// will be re-acquired in the receiver domain's arena on injection.
type Handoff = (Time, NodeId, Packet);

/// How the engine decides when to stop.
#[derive(Clone, Copy)]
enum Mode {
    /// Run until every scheduled flow completed, then drain a grace
    /// period anchored at the global completion instant (mirrors
    /// [`Sim::run_to_completion`]).
    Completion(TimeDelta),
    /// Run until virtual time would pass the deadline (mirrors
    /// [`Sim::run_until`], inclusive).
    Until(Time),
}

/// The partitioned parallel simulation driver: one [`Sim`] per domain,
/// advanced in conservative lock-step windows on scoped threads.
pub struct ParSim<O: NetObserver + Send> {
    sims: Vec<Sim<O>>,
    domain_of: Arc<Vec<u32>>,
    host_domain: Vec<u32>,
    lookahead: TimeDelta,
    total_flows: usize,
    split_flows: u64,
    probe: Option<Arc<ProgressProbe>>,
}

impl<O: NetObserver + Send> ParSim<O> {
    /// Builds the engine from a [`Partition`], one factory clone and one
    /// observer per domain.
    ///
    /// # Panics
    ///
    /// Panics if the factory or observer count does not match the domain
    /// count.
    pub fn new(
        part: Partition,
        factories: Vec<Box<dyn TransportFactory>>,
        observers: Vec<O>,
        expected_flows: usize,
    ) -> Self {
        let Partition {
            parts,
            domain_of,
            host_domain,
            lookahead,
        } = part;
        assert_eq!(parts.len(), factories.len(), "one factory per domain");
        assert_eq!(parts.len(), observers.len(), "one observer per domain");
        assert!(lookahead > TimeDelta::ZERO, "lookahead must be positive");
        let mut sims = Vec::with_capacity(parts.len());
        for (me, ((topo, factory), observer)) in
            parts.into_iter().zip(factories).zip(observers).enumerate()
        {
            let mut sim = Sim::with_flow_capacity(topo, factory, observer, expected_flows);
            sim.set_partition(PartitionCtx {
                domain_of: Arc::clone(&domain_of),
                me: u32::try_from(me).expect("domain count fits u32"),
            });
            sims.push(sim);
        }
        ParSim {
            sims,
            domain_of,
            host_domain,
            lookahead,
            total_flows: 0,
            split_flows: 0,
            probe: None,
        }
    }

    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.sims.len()
    }

    /// The conservative window width (minimum cut-link propagation).
    pub fn lookahead(&self) -> TimeDelta {
        self.lookahead
    }

    /// Schedules a flow. An intra-domain flow registers both endpoint
    /// halves in its domain; a cut-crossing flow is split — receiver half
    /// in the destination host's domain, sender half in the source's.
    pub fn schedule_flow(&mut self, spec: FlowSpec) {
        let sd = self
            .host_domain
            .get(spec.src)
            .copied()
            .expect("flow source host in range") as usize;
        let rd = self
            .host_domain
            .get(spec.dst)
            .copied()
            .expect("flow destination host in range") as usize;
        self.total_flows += 1;
        if sd == rd {
            self.sims
                .get_mut(sd)
                .expect("host domain in range")
                .schedule_flow_role(spec, FlowRole::Both);
        } else {
            self.split_flows += 1;
            self.sims
                .get_mut(rd)
                .expect("host domain in range")
                .schedule_flow_role(spec, FlowRole::Receiver);
            self.sims
                .get_mut(sd)
                .expect("host domain in range")
                .schedule_flow_role(spec, FlowRole::Sender);
        }
    }

    /// Enables periodic queue sampling in every domain (stopped by the
    /// engine at the first window barrier after global completion).
    pub fn enable_sampling(&mut self, every: TimeDelta) {
        for sim in &mut self.sims {
            sim.enable_sampling(every);
        }
    }

    /// Enables random non-congestion loss. Each domain draws from its own
    /// stream (seed mixed with the domain index), so the realized loss
    /// pattern differs from a serial run with the same seed — only the
    /// statistical rate carries over.
    pub fn inject_loss(&mut self, p: f64, seed: u64) {
        for (d, sim) in self.sims.iter_mut().enumerate() {
            sim.inject_loss(
                p,
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(d as u64 + 1)),
            );
        }
    }

    /// Attaches a progress probe; domain 0's thread publishes aggregated
    /// event totals, per-domain counts, and arena statistics at window
    /// boundaries.
    pub fn attach_progress(&mut self, probe: Arc<ProgressProbe>) {
        self.probe = Some(probe);
    }

    /// Flows completed across all domains (each completion fires exactly
    /// once, receiver-side, so the sum has no double counting).
    pub fn flows_completed(&self) -> usize {
        self.sims.iter().map(|s| s.flows_completed()).sum()
    }

    /// Unique flows scheduled.
    pub fn flows_scheduled(&self) -> usize {
        self.total_flows
    }

    /// Total events processed, adjusted to be comparable with a serial
    /// run: a split flow pops one FlowStart event in each of its two
    /// domains where the serial engine pops one, so the duplicate is
    /// subtracted. All other event kinds map one-to-one.
    pub fn events_processed(&self) -> u64 {
        let raw: u64 = self.sims.iter().map(|s| s.events_processed()).sum();
        raw - self.split_flows
    }

    /// Raw events processed per domain (load-balance metric; includes the
    /// duplicate FlowStart of split flows).
    pub fn events_per_domain(&self) -> Vec<u64> {
        self.sims.iter().map(|s| s.events_processed()).collect()
    }

    /// Summed arena statistics `(live, high_water, capacity, grows)`
    /// across the per-domain arenas.
    pub fn arena_stats(&self) -> (usize, usize, usize, u64) {
        let mut acc = (0usize, 0usize, 0usize, 0u64);
        for s in &self.sims {
            let (live, hw, cap, grows) = s.arena_stats();
            acc = (acc.0 + live, acc.1 + hw, acc.2 + cap, acc.3 + grows);
        }
        acc
    }

    /// Packets dropped by loss injection, across domains.
    pub fn injected_losses(&self) -> u64 {
        self.sims.iter().map(|s| s.injected_losses()).sum()
    }

    /// Consumes the engine, returning the per-domain observers in domain
    /// order (merge with the metrics layer's absorb operation).
    pub fn into_observers(self) -> Vec<O> {
        self.sims.into_iter().map(|s| s.observer).collect()
    }

    /// Runs until every flow completes, then drains `grace` beyond the
    /// global completion instant — the parallel analogue of
    /// [`Sim::run_to_completion`].
    ///
    /// # Panics
    ///
    /// Panics if every calendar drains while flows are incomplete (same
    /// contract as the serial engine), or if a domain thread panics (the
    /// panic message is re-raised on the calling thread).
    pub fn run_to_completion(&mut self, grace: TimeDelta) {
        self.run_engine(Mode::Completion(grace));
    }

    /// Runs until virtual time would pass `deadline` (inclusive), the
    /// parallel analogue of [`Sim::run_until`].
    pub fn run_until(&mut self, deadline: Time) {
        self.run_engine(Mode::Until(deadline));
    }

    fn run_engine(&mut self, mode: Mode) {
        let k = self.sims.len();
        debug_assert!(k >= 2, "partition yields at least two domains");
        let lookahead = self.lookahead;
        let total_flows = self.total_flows;
        let probe = self.probe.clone();
        let domain_of = Arc::clone(&self.domain_of);

        // Shared window state. The two t-min cells ping-pong by window
        // parity: while window w's cell converges, domain 0 resets the
        // other for window w+1 (ordered by the barriers on both sides).
        let barrier = Barrier::new(k);
        let tmin = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
        let completed: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
        let events: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let arena_grows: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let arena_hw: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let last_comp = AtomicU64::new(0);
        let poisoned = AtomicBool::new(false);
        let drained_incomplete = AtomicBool::new(false);
        let panic_msg: OnceLock<String> = OnceLock::new();

        // k×k cross-domain channels; txs[i][j] sends i→j, rxs[j][i]
        // receives from i. The self-channel exists but stays empty.
        let mut txs: Vec<Vec<Sender<Handoff>>> = (0..k).map(|_| Vec::with_capacity(k)).collect();
        let mut rxs: Vec<Vec<Receiver<Handoff>>> = (0..k).map(|_| Vec::with_capacity(k)).collect();
        for i in 0..k {
            for j in 0..k {
                let (tx, rx) = std::sync::mpsc::channel();
                txs.get_mut(i).expect("sender row in range").push(tx);
                rxs.get_mut(j).expect("receiver row in range").push(rx);
            }
        }

        // Domain threads install their own auditor when the calling
        // thread has one active; partial states merge back afterwards.
        let audit_active = audit::is_active();

        let partials: Vec<Option<audit::PartialAudit>> = std::thread::scope(|s| {
            let barrier = &barrier;
            let tmin = &tmin;
            let completed = &completed;
            let events = &events;
            let arena_grows = &arena_grows;
            let arena_hw = &arena_hw;
            let last_comp = &last_comp;
            let poisoned = &poisoned;
            let drained_incomplete = &drained_incomplete;
            let panic_msg = &panic_msg;
            let probe = probe.as_ref();
            let domain_of = &domain_of;

            let mut handles = Vec::with_capacity(k);
            for (me, ((sim, my_tx), my_rx)) in self.sims.iter_mut().zip(txs).zip(rxs).enumerate() {
                // lint:allow(thread-spawn): the parallel engine's domain
                // runners are a blessed thread home (see lint.toml).
                handles.push(s.spawn(move || {
                    domain_loop(DomainCtx {
                        me,
                        sim,
                        my_tx,
                        my_rx,
                        barrier,
                        tmin,
                        completed,
                        events,
                        arena_grows,
                        arena_hw,
                        last_comp,
                        poisoned,
                        drained_incomplete,
                        panic_msg,
                        probe,
                        domain_of,
                        mode,
                        lookahead,
                        total_flows,
                        audit_active,
                    })
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("domain threads catch their own panics"))
                .collect()
        });

        for p in partials.into_iter().flatten() {
            audit::absorb_partial(p);
        }

        if drained_incomplete.load(Ordering::SeqCst) {
            let done: usize = completed.iter().map(|c| c.load(Ordering::SeqCst)).sum();
            // lint:allow(panic-path): same contract as the serial engine —
            // a drained calendar with incomplete flows is a transport bug.
            panic!("event queue drained with {done}/{total_flows} flows incomplete");
        }
        if poisoned.load(Ordering::SeqCst) {
            let msg = panic_msg
                .get()
                .map(String::as_str)
                .unwrap_or("domain thread panicked");
            // lint:allow(panic-path): re-raise a domain thread's panic on
            // the calling thread so orchestrate's fault isolation sees it.
            panic!("{msg}");
        }
    }
}

/// Everything one domain thread needs; bundled so the spawn closure stays
/// readable.
struct DomainCtx<'a, 'sim, O: NetObserver + Send> {
    me: usize,
    sim: &'sim mut Sim<O>,
    my_tx: Vec<Sender<Handoff>>,
    my_rx: Vec<Receiver<Handoff>>,
    barrier: &'a Barrier,
    tmin: &'a [AtomicU64; 2],
    completed: &'a [AtomicUsize],
    events: &'a [AtomicU64],
    arena_grows: &'a [AtomicU64],
    arena_hw: &'a [AtomicU64],
    last_comp: &'a AtomicU64,
    poisoned: &'a AtomicBool,
    drained_incomplete: &'a AtomicBool,
    panic_msg: &'a OnceLock<String>,
    probe: Option<&'a Arc<ProgressProbe>>,
    domain_of: &'a Arc<Vec<u32>>,
    mode: Mode,
    lookahead: TimeDelta,
    total_flows: usize,
    audit_active: bool,
}

/// Extracts a human-readable message from a caught panic payload.
fn payload_msg(e: Box<dyn std::any::Any + Send>) -> String {
    match e.downcast::<String>() {
        Ok(s) => *s,
        Err(e) => match e.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "domain thread panicked".to_string(),
        },
    }
}

fn domain_loop<O: NetObserver + Send>(ctx: DomainCtx<'_, '_, O>) -> Option<audit::PartialAudit> {
    let DomainCtx {
        me,
        sim,
        my_tx,
        my_rx,
        barrier,
        tmin,
        completed,
        events,
        arena_grows,
        arena_hw,
        last_comp,
        poisoned,
        drained_incomplete,
        panic_msg,
        probe,
        domain_of,
        mode,
        lookahead,
        total_flows,
        audit_active,
    } = ctx;

    if audit_active {
        audit::install();
    }

    let grace = match mode {
        Mode::Completion(g) => g,
        Mode::Until(_) => TimeDelta::ZERO,
    };
    // The drain deadline, once known. In Until mode it is fixed up
    // front; in Completion mode every thread arms it at the same window,
    // from the same shared completion snapshot.
    let mut deadline: Option<Time> = match mode {
        Mode::Completion(_) => None,
        Mode::Until(t) => Some(t),
    };
    let mut w: usize = 0;

    loop {
        // B1: the previous window's channel sends are now visible.
        barrier.wait();

        // Catchable per-window work, phase 1: drain inboxes (ascending
        // sender order keeps calendar tie order deterministic).
        if !poisoned.load(Ordering::SeqCst) {
            let drained = catch_unwind(AssertUnwindSafe(|| {
                for rx in &my_rx {
                    while let Ok((at, node, pkt)) = rx.try_recv() {
                        sim.inject_arrival(at, node, pkt);
                    }
                }
            }));
            if let Err(e) = drained {
                let _ = panic_msg.set(payload_msg(e));
                poisoned.store(true, Ordering::SeqCst);
            }
        }

        // Publish this domain's state for the window decision.
        let my_min = if poisoned.load(Ordering::SeqCst) {
            u64::MAX
        } else {
            sim.next_event_time().map_or(u64::MAX, |t| t.as_nanos())
        };
        let cell = tmin.get(w & 1).expect("two parity cells");
        cell.fetch_min(my_min, Ordering::SeqCst);
        if let Some(c) = completed.get(me) {
            c.store(sim.flows_completed(), Ordering::SeqCst);
        }
        if let Some(c) = events.get(me) {
            c.store(sim.events_processed(), Ordering::SeqCst);
        }
        let (_, hw, _, grows) = sim.arena_stats();
        if let Some(c) = arena_grows.get(me) {
            c.store(grows, Ordering::SeqCst);
        }
        if let Some(c) = arena_hw.get(me) {
            c.store(hw as u64, Ordering::SeqCst);
        }
        last_comp.fetch_max(sim.last_completion().as_nanos(), Ordering::SeqCst);

        // B2: the global minimum and all counters are final.
        barrier.wait();

        // Every thread computes the identical decision from the same
        // shared snapshot — no thread may diverge, or barriers deadlock.
        if poisoned.load(Ordering::SeqCst) {
            break;
        }
        let t_min = cell.load(Ordering::SeqCst);
        let done: usize = completed.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        if matches!(mode, Mode::Completion(_)) && deadline.is_none() && done >= total_flows {
            // Global completion: anchor the grace window at the max
            // per-domain completion instant (= the serial completion
            // time) and stop periodic sampling, as the serial engine
            // does when its flow table completes.
            deadline = Some(Time::from_nanos(last_comp.load(Ordering::SeqCst)) + grace);
            sim.stop_sampling();
        }
        if t_min == u64::MAX {
            if matches!(mode, Mode::Completion(_)) && done < total_flows {
                drained_incomplete.store(true, Ordering::SeqCst);
            }
            break;
        }
        let t_min = Time::from_nanos(t_min);
        if let Some(dl) = deadline {
            if t_min > dl {
                break;
            }
        }

        if me == 0 {
            // Reset the other parity cell for window w+1. Safe: every
            // thread finished reading it (window w-1's decision) before
            // B1 of this window, and none writes it before B1 of w+1.
            let other = tmin.get((w + 1) & 1).expect("two parity cells");
            other.store(u64::MAX, Ordering::SeqCst);
            if let Some(p) = probe {
                let total: u64 = events.iter().map(|c| c.load(Ordering::SeqCst)).sum();
                p.publish(total, t_min.as_nanos());
                for (d, c) in events.iter().enumerate() {
                    p.publish_domain_events(d, c.load(Ordering::SeqCst));
                }
                let grows: u64 = arena_grows.iter().map(|c| c.load(Ordering::SeqCst)).sum();
                let hw: u64 = arena_hw.iter().map(|c| c.load(Ordering::SeqCst)).sum();
                p.publish_arena(grows, hw);
            }
        }

        // The causally closed window: [t_min, t_min + lookahead), capped
        // one past the drain deadline so deadline-instant events still
        // run (run_until is inclusive).
        let mut horizon = t_min.saturating_add(lookahead);
        if let Some(dl) = deadline {
            horizon = horizon.min(dl.saturating_add(TimeDelta::nanos(1)));
        }

        // Catchable per-window work, phase 2: run the window, then hand
        // off cut-crossing packets. Send errors are ignored — they can
        // only occur after a peer broke out poisoned, in which case this
        // thread breaks at the next decision anyway.
        let ran = catch_unwind(AssertUnwindSafe(|| {
            sim.run_window(horizon);
            let outbox_len = sim.outbox.len();
            for i in 0..outbox_len {
                let (at, node, pkt) = *sim.outbox.get(i).expect("outbox index in range");
                let d = domain_of.get(node).copied().unwrap_or(0) as usize;
                if let Some(tx) = my_tx.get(d) {
                    let _ = tx.send((at, node, pkt));
                }
            }
            sim.outbox.clear();
        }));
        if let Err(e) = ran {
            let _ = panic_msg.set(payload_msg(e));
            poisoned.store(true, Ordering::SeqCst);
        }
        w += 1;
    }

    if audit_active {
        audit::take_partial()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats, TxStats};
    use crate::packet::{DataInfo, Payload, Subflow, TrafficClass};
    use crate::partition::partition;
    use crate::port::{PortConfig, QueueSched};
    use crate::queue::QueueConfig;
    use crate::sim::{NetEnv, NodeId};
    use crate::switch::{ClassMap, QueueSample, SwitchProfile};
    use crate::topology::{ClosParams, Topology};
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::Bytes;

    fn profile(rate: Rate) -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate,
                queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
            },
            class_map: ClassMap::Single,
            shared_buffer: None,
        }
    }

    /// Windowed blast transport: the sender emits a burst of packets per
    /// timer tick until the flow's bytes are sent; the receiver counts
    /// and completes. Simple, deterministic, and stateless per flow, so
    /// the factory clones trivially.
    struct PacedSender {
        spec: FlowSpec,
        next_seq: u32,
        done: bool,
    }

    impl Endpoint for PacedSender {
        fn activate(&mut self, ctx: &mut EndpointCtx) {
            ctx.set_timer(ctx.now, crate::sim::timer_token(self.spec.id, 1));
        }
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut EndpointCtx) {
            let total = crate::consts::packets_for(self.spec.size).get();
            for _ in 0..4 {
                if self.next_seq >= total {
                    break;
                }
                let pay = crate::consts::payload_of_packet(self.spec.size, self.next_seq);
                ctx.send(Packet::new(
                    self.spec.id,
                    self.spec.src,
                    self.spec.dst,
                    crate::consts::data_wire_bytes(pay),
                    TrafficClass::Legacy,
                    Payload::Data(DataInfo {
                        flow_seq: self.next_seq,
                        sub_seq: self.next_seq,
                        sub: Subflow::Only,
                        payload: pay,
                        retx: false,
                    }),
                ));
                self.next_seq += 1;
            }
            if self.next_seq < total {
                ctx.set_timer(
                    ctx.now + TimeDelta::micros(2),
                    crate::sim::timer_token(self.spec.id, 1),
                );
            } else if !self.done {
                self.done = true;
                ctx.emit(AppEvent::SenderDone {
                    flow: self.spec.id,
                    stats: TxStats::default(),
                });
            }
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    struct CountReceiver {
        spec: FlowSpec,
        got: Bytes,
        done: bool,
    }

    impl Endpoint for CountReceiver {
        fn activate(&mut self, _ctx: &mut EndpointCtx) {}
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
            self.got += pkt.payload_bytes();
            if self.got >= self.spec.size && !self.done {
                self.done = true;
                ctx.emit(AppEvent::FlowCompleted {
                    flow: self.spec.id,
                    stats: RxStats::default(),
                });
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
        fn finished(&self) -> bool {
            self.done
        }
    }

    struct PacedFactory;

    impl TransportFactory for PacedFactory {
        fn sender(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
            Box::new(PacedSender {
                spec: *flow,
                next_seq: 0,
                done: false,
            })
        }
        fn receiver(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
            Box::new(CountReceiver {
                spec: *flow,
                got: Bytes::ZERO,
                done: false,
            })
        }
        fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
            Some(Box::new(PacedFactory))
        }
    }

    /// Records flow completions `(flow id, fct ns)`; order-insensitive
    /// comparison via sorting.
    #[derive(Default)]
    struct FctLog {
        started: Vec<(u64, u64)>,
        completed: Vec<(u64, u64)>,
    }

    impl NetObserver for FctLog {
        fn on_flow_start(&mut self, spec: &FlowSpec, now: Time) {
            self.started.push((spec.id, now.as_nanos()));
        }
        fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
            if let AppEvent::FlowCompleted { flow, .. } = ev {
                self.completed.push((*flow, now.as_nanos()));
            }
        }
    }

    fn clos_flows(n_hosts: usize, n_flows: u64) -> Vec<FlowSpec> {
        (0..n_flows)
            .map(|i| {
                let src = (i as usize * 7) % n_hosts;
                let dst = (src + 1 + (i as usize * 13) % (n_hosts - 1)) % n_hosts;
                FlowSpec {
                    id: i,
                    src,
                    dst,
                    size: Bytes::new(20_000 + (i % 5) * 3_000),
                    start: Time::from_nanos(i * 977),
                    tag: 0,
                    fg: false,
                }
            })
            .collect()
    }

    fn run_serial(params: ClosParams, flows: &[FlowSpec]) -> (u64, usize, Vec<(u64, u64)>) {
        let p = profile(Rate::from_gbps(40));
        let topo = Topology::clos(params, &p, &p);
        let mut sim = Sim::new(topo, Box::new(PacedFactory), FctLog::default());
        for f in flows {
            sim.schedule_flow(*f);
        }
        sim.run_to_completion(TimeDelta::micros(50));
        let mut fcts = sim.observer.completed.clone();
        fcts.sort_unstable();
        (sim.events_processed(), sim.flows_completed(), fcts)
    }

    fn run_par(params: ClosParams, flows: &[FlowSpec], n: usize) -> (u64, usize, Vec<(u64, u64)>) {
        let p = profile(Rate::from_gbps(40));
        let topo = Topology::clos(params, &p, &p);
        let part = partition(topo, n).ok().expect("clos partitions");
        let k = part.n_domains();
        let factories: Vec<Box<dyn TransportFactory>> = (0..k)
            .map(|_| Box::new(PacedFactory) as Box<dyn TransportFactory>)
            .collect();
        let observers: Vec<FctLog> = (0..k).map(|_| FctLog::default()).collect();
        let mut par = ParSim::new(part, factories, observers, flows.len());
        for f in flows {
            par.schedule_flow(*f);
        }
        par.run_to_completion(TimeDelta::micros(50));
        let events = par.events_processed();
        let done = par.flows_completed();
        let mut fcts: Vec<(u64, u64)> = par
            .into_observers()
            .into_iter()
            .flat_map(|o| o.completed)
            .collect();
        fcts.sort_unstable();
        (events, done, fcts)
    }

    #[test]
    fn parallel_matches_serial_on_small_clos() {
        let params = ClosParams::small();
        let flows = clos_flows(48, 40);
        let serial = run_serial(params, &flows);
        for n in [2, 4] {
            let par = run_par(params, &flows, n);
            assert_eq!(par.1, serial.1, "completions at n={n}");
            assert_eq!(par.2, serial.2, "per-flow FCTs at n={n}");
            assert_eq!(par.0, serial.0, "adjusted event counts at n={n}");
        }
    }

    #[test]
    fn sampling_stops_after_completion() {
        struct SampleCount(u64);
        impl NetObserver for SampleCount {
            fn on_queue_sample(
                &mut self,
                _node: NodeId,
                _port: usize,
                _s: &QueueSample,
                _now: Time,
            ) {
                self.0 += 1;
            }
        }
        let p = profile(Rate::from_gbps(40));
        let topo = Topology::clos(ClosParams::small(), &p, &p);
        let part = partition(topo, 2).ok().expect("clos partitions");
        let k = part.n_domains();
        let factories: Vec<Box<dyn TransportFactory>> = (0..k)
            .map(|_| Box::new(PacedFactory) as Box<dyn TransportFactory>)
            .collect();
        let observers: Vec<SampleCount> = (0..k).map(|_| SampleCount(0)).collect();
        let mut par = ParSim::new(part, factories, observers, 4);
        par.enable_sampling(TimeDelta::micros(10));
        for f in clos_flows(48, 4) {
            par.schedule_flow(f);
        }
        // Terminates: sampling must not keep the run alive forever.
        par.run_to_completion(TimeDelta::micros(50));
        let samples: u64 = par.into_observers().into_iter().map(|o| o.0).sum();
        assert!(samples > 0, "sampling ran");
    }

    #[test]
    fn domain_thread_panic_propagates_with_message() {
        struct PanicReceiver;
        impl Endpoint for PanicReceiver {
            fn activate(&mut self, _ctx: &mut EndpointCtx) {}
            fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {
                panic!("injected domain fault");
            }
            fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
            fn finished(&self) -> bool {
                false
            }
        }
        struct PanicFactory;
        impl TransportFactory for PanicFactory {
            fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint> {
                PacedFactory.sender(flow, env)
            }
            fn receiver(&mut self, _flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(PanicReceiver)
            }
            fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
                Some(Box::new(PanicFactory))
            }
        }
        let p = profile(Rate::from_gbps(40));
        let topo = Topology::clos(ClosParams::small(), &p, &p);
        let part = partition(topo, 2).ok().expect("clos partitions");
        let k = part.n_domains();
        let factories: Vec<Box<dyn TransportFactory>> = (0..k)
            .map(|_| Box::new(PanicFactory) as Box<dyn TransportFactory>)
            .collect();
        let observers: Vec<FctLog> = (0..k).map(|_| FctLog::default()).collect();
        let mut par = ParSim::new(part, factories, observers, 1);
        par.schedule_flow(FlowSpec {
            id: 1,
            src: 0,
            dst: 1,
            size: Bytes::new(10_000),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par.run_to_completion(TimeDelta::micros(50));
        }))
        .expect_err("fault must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected domain fault"), "got: {msg}");
    }
}
