//! Wire-format constants shared by all transports.
//!
//! Sizes are *on-wire* Ethernet bytes (frame + preamble + inter-frame gap),
//! used both for serialization time and buffer occupancy. The paper's
//! thresholds are quoted in kB of queue length; the ~2.5 % framing overhead
//! relative to IP bytes is irrelevant at the granularity of its results.
//!
//! This module is the **only** blessed crossing between the payload-byte and
//! wire-byte domains (see `simcore::units`): [`data_wire_bytes`] maps a
//! payload to its on-wire size, and [`packets_for`] / [`payload_of_packet`]
//! packetize a flow. Everything downstream stays in whichever typed domain
//! it received.

use flexpass_simcore::units::{Bytes, PktCount, WireBytes};

/// Maximum application payload carried by one data packet.
pub const MTU_PAYLOAD: Bytes = Bytes::new(1_460);

/// On-wire size of a full data packet: 1460 B payload + TCP/IP-like + FlexPass
/// headers + Ethernet framing, preamble and IFG.
pub const DATA_WIRE: WireBytes = WireBytes::new(1_538);

/// On-wire size of the headers of a data packet (used for runt last packets).
pub const DATA_HEADER_WIRE: WireBytes = WireBytes::new(DATA_WIRE.get() - MTU_PAYLOAD.get());

/// On-wire size of a control packet (credit, ACK, grant, request): a minimum
/// 64 B Ethernet frame plus preamble and IFG.
pub const CTRL_WIRE: WireBytes = WireBytes::new(84);

/// Fraction of link capacity the ExpressPass credit queue must be limited to
/// so that the triggered data packets exactly fill the link:
/// `CTRL_WIRE / (CTRL_WIRE + DATA_WIRE)`.
pub const CREDIT_RATE_FULL_FRACTION: f64 =
    CTRL_WIRE.get() as f64 / (CTRL_WIRE.get() as f64 + DATA_WIRE.get() as f64);

/// On-wire size of a data packet carrying `payload` bytes.
///
/// This is a domain crossing: the payload rides inside the wire frame, so
/// the payload count re-enters the wire domain here — and only here.
pub fn data_wire_bytes(payload: Bytes) -> WireBytes {
    debug_assert!(payload > Bytes::ZERO && payload <= MTU_PAYLOAD);
    (DATA_HEADER_WIRE + WireBytes::new(payload.get())).max(CTRL_WIRE)
}

/// Number of data packets needed to carry `size` bytes of application data.
///
/// A zero-byte flow still takes one (runt) packet: connection setup and
/// completion signalling ride on data packets in this model.
pub fn packets_for(size: Bytes) -> PktCount {
    let n = size.div_ceil(MTU_PAYLOAD).max(1);
    debug_assert!(n <= u32::MAX as u64);
    PktCount::new(n as u32)
}

/// Payload carried by packet index `i` (0-based) of a `size`-byte flow.
pub fn payload_of_packet(size: Bytes, i: u32) -> Bytes {
    let n = packets_for(size);
    debug_assert!(i < n.get());
    if i + 1 < n.get() {
        MTU_PAYLOAD
    } else {
        size - n.saturating_sub(PktCount::ONE) * MTU_PAYLOAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_fraction_is_about_5_percent() {
        assert!((CREDIT_RATE_FULL_FRACTION - 0.0518).abs() < 0.001);
    }

    #[test]
    fn packets_for_sizes() {
        assert_eq!(packets_for(Bytes::new(1)), PktCount::new(1));
        assert_eq!(packets_for(Bytes::new(1460)), PktCount::new(1));
        assert_eq!(packets_for(Bytes::new(1461)), PktCount::new(2));
        assert_eq!(packets_for(Bytes::new(64_000)), PktCount::new(44));
    }

    #[test]
    fn zero_size_flow_still_takes_one_packet() {
        assert_eq!(packets_for(Bytes::ZERO), PktCount::ONE);
        assert_eq!(payload_of_packet(Bytes::ZERO, 0), Bytes::ZERO);
    }

    #[test]
    fn exact_mtu_multiple_has_full_last_packet() {
        for mult in [1u64, 2, 44, 1000] {
            let size = MTU_PAYLOAD * mult;
            let n = packets_for(size);
            assert_eq!(u64::from(n.get()), mult, "size {size}");
            assert_eq!(payload_of_packet(size, n.get() - 1), MTU_PAYLOAD);
        }
    }

    #[test]
    fn payload_partition_conserves_bytes() {
        for raw in [1u64, 100, 1460, 1461, 2920, 64_000, 1_000_000] {
            let size = Bytes::new(raw);
            let n = packets_for(size);
            let total: Bytes = (0..n.get()).map(|i| payload_of_packet(size, i)).sum();
            assert_eq!(total, size, "size {size}");
        }
    }

    #[test]
    fn wire_bytes_bounds() {
        assert_eq!(data_wire_bytes(MTU_PAYLOAD), DATA_WIRE);
        assert!(data_wire_bytes(Bytes::new(1)) >= CTRL_WIRE);
    }
}
