//! Wire-format constants shared by all transports.
//!
//! Sizes are *on-wire* Ethernet bytes (frame + preamble + inter-frame gap),
//! used both for serialization time and buffer occupancy. The paper's
//! thresholds are quoted in kB of queue length; the ~2.5 % framing overhead
//! relative to IP bytes is irrelevant at the granularity of its results.

/// Maximum application payload carried by one data packet (bytes).
pub const MTU_PAYLOAD: u64 = 1_460;

/// On-wire size of a full data packet: 1460 B payload + TCP/IP-like + FlexPass
/// headers + Ethernet framing, preamble and IFG.
pub const DATA_WIRE: u32 = 1_538;

/// On-wire size of the headers of a data packet (used for runt last packets).
pub const DATA_HEADER_WIRE: u32 = DATA_WIRE - MTU_PAYLOAD as u32;

/// On-wire size of a control packet (credit, ACK, grant, request): a minimum
/// 64 B Ethernet frame plus preamble and IFG.
pub const CTRL_WIRE: u32 = 84;

/// Fraction of link capacity the ExpressPass credit queue must be limited to
/// so that the triggered data packets exactly fill the link:
/// `CTRL_WIRE / (CTRL_WIRE + DATA_WIRE)`.
pub const CREDIT_RATE_FULL_FRACTION: f64 = CTRL_WIRE as f64 / (CTRL_WIRE as f64 + DATA_WIRE as f64);

/// On-wire size of a data packet carrying `payload` bytes.
pub fn data_wire_bytes(payload: u64) -> u32 {
    debug_assert!(payload > 0 && payload <= MTU_PAYLOAD);
    (DATA_HEADER_WIRE as u64 + payload).max(CTRL_WIRE as u64) as u32
}

/// Number of data packets needed to carry `size` bytes of application data.
pub fn packets_for(size: u64) -> u32 {
    size.div_ceil(MTU_PAYLOAD).max(1) as u32
}

/// Payload carried by packet index `i` (0-based) of a `size`-byte flow.
pub fn payload_of_packet(size: u64, i: u32) -> u64 {
    let n = packets_for(size);
    debug_assert!(i < n);
    if i + 1 < n {
        MTU_PAYLOAD
    } else {
        size - MTU_PAYLOAD * (n as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_fraction_is_about_5_percent() {
        assert!((CREDIT_RATE_FULL_FRACTION - 0.0518).abs() < 0.001);
    }

    #[test]
    fn packets_for_sizes() {
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(1460), 1);
        assert_eq!(packets_for(1461), 2);
        assert_eq!(packets_for(64_000), 44);
    }

    #[test]
    fn payload_partition_conserves_bytes() {
        for size in [1u64, 100, 1460, 1461, 2920, 64_000, 1_000_000] {
            let n = packets_for(size);
            let total: u64 = (0..n).map(|i| payload_of_packet(size, i)).sum();
            assert_eq!(total, size, "size {size}");
        }
    }

    #[test]
    fn wire_bytes_bounds() {
        assert_eq!(data_wire_bytes(MTU_PAYLOAD), DATA_WIRE);
        assert!(data_wire_bytes(1) >= CTRL_WIRE);
    }
}
