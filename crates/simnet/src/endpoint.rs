//! The transport endpoint abstraction.
//!
//! A transport protocol is implemented as two [`Endpoint`]s per flow — one at
//! the sender, one at the receiver — reacting to packet arrivals and timers.
//! Endpoints never touch the network directly; they emit packets, timer
//! requests and application events through an [`EndpointCtx`], which the host
//! drains into the simulator.

use flexpass_simcore::time::Time;

use crate::arena::{PacketArena, PacketId};
use crate::packet::{FlowId, Packet};

/// Sender-side transmission statistics, reported on [`AppEvent::SenderDone`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Data packets transmitted (including retransmissions).
    pub data_pkts: u64,
    /// Application bytes transmitted (including redundant bytes).
    pub data_bytes: u64,
    /// Loss-recovery retransmissions (state was `Lost`).
    pub retx_pkts: u64,
    /// FlexPass "proactive retransmissions" of unacked reactive packets.
    pub proactive_retx_pkts: u64,
    /// Redundant application bytes (received more than once at the peer is
    /// tracked receiver-side; this counts bytes *sent* more than once).
    pub redundant_bytes: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// Credit packets received (proactive transports).
    pub credits_received: u64,
    /// Credits that arrived with nothing useful to send (wasted credits).
    pub credits_wasted: u64,
}

/// Receiver-side statistics, reported on [`AppEvent::FlowCompleted`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RxStats {
    /// Data packets received (including duplicates).
    pub pkts_received: u64,
    /// Duplicate data packets discarded during reassembly.
    pub dup_pkts: u64,
    /// Peak bytes buffered out-of-order awaiting reassembly.
    pub reorder_peak_bytes: u64,
}

/// Events endpoints raise towards the application / metrics layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// All application bytes of the flow were delivered in order.
    FlowCompleted {
        /// The completed flow.
        flow: FlowId,
        /// Receiver-side statistics.
        stats: RxStats,
    },
    /// The sender saw every byte acknowledged.
    SenderDone {
        /// The finished flow.
        flow: FlowId,
        /// Sender-side statistics.
        stats: TxStats,
    },
}

/// One buffered timer request, drained by the simulator after the callback.
///
/// Kept as a single ordered list (rather than separate arm/cancel buffers)
/// so the calendar sees requests in exactly the order the endpoint issued
/// them — sequence numbers, and therefore FIFO tie-breaks, stay
/// deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerCmd {
    /// Fire-and-forget timer at `(at, token)`; never cancelled.
    Set(Time, u64),
    /// Arm (or re-arm, replacing any previous arming of the same token)
    /// a cancellable timer at `(at, token)`.
    Arm(Time, u64),
    /// Cancel the armed timer for `token`, if any.
    Cancel(u64),
}

/// Output channel endpoints write into during a callback.
///
/// `send` moves the packet straight into the [`PacketArena`] and stages
/// only its [`PacketId`] — from the first callback on, a packet's bytes
/// live in exactly one place until release.
pub struct EndpointCtx<'a> {
    /// Current virtual time.
    pub now: Time,
    arena: &'a mut PacketArena,
    tx: &'a mut Vec<PacketId>,
    timers: &'a mut Vec<TimerCmd>,
    app: &'a mut Vec<AppEvent>,
}

impl<'a> EndpointCtx<'a> {
    /// Builds a context around the host's scratch buffers and the packet
    /// arena.
    pub fn new(
        now: Time,
        arena: &'a mut PacketArena,
        tx: &'a mut Vec<PacketId>,
        timers: &'a mut Vec<TimerCmd>,
        app: &'a mut Vec<AppEvent>,
    ) -> Self {
        EndpointCtx {
            now,
            arena,
            tx,
            timers,
            app,
        }
    }

    /// Transmits a packet through the host NIC: the packet enters the
    /// arena here and travels as an id from now on.
    pub fn send(&mut self, pkt: Packet) {
        self.tx.push(self.arena.acquire(pkt));
    }

    /// Requests a fire-and-forget timer callback at absolute time `at` with
    /// an opaque token.
    ///
    /// These timers are not cancellable; endpoints must treat stale tokens
    /// as no-ops. For timers that are routinely superseded (RTO re-arms,
    /// pacing chains) prefer [`arm_timer`](Self::arm_timer), which replaces
    /// instead of stacking stale entries in the calendar.
    pub fn set_timer(&mut self, at: Time, token: u64) {
        self.timers.push(TimerCmd::Set(at, token));
    }

    /// Arms a cancellable timer for `token` at absolute time `at`,
    /// *replacing* any previously armed timer with the same token
    /// (cancel-and-replace semantics). At most one armed timer exists per
    /// `(endpoint host, token)` at a time.
    pub fn arm_timer(&mut self, at: Time, token: u64) {
        self.timers.push(TimerCmd::Arm(at, token));
    }

    /// Cancels the armed timer for `token`. A no-op when none is armed —
    /// cancelling an already-fired or never-armed token is safe.
    pub fn cancel_timer(&mut self, token: u64) {
        self.timers.push(TimerCmd::Cancel(token));
    }

    /// Raises an application event.
    pub fn emit(&mut self, ev: AppEvent) {
        self.app.push(ev);
    }
}

/// One half (sender or receiver) of a transport protocol instance.
/// `Send` is a supertrait so a whole simulation — hosts hold their live
/// endpoints as `Box<dyn Endpoint>` — can be constructed on one thread and
/// driven on a worker thread by the experiment orchestrator. Endpoints are
/// plain state machines over owned data, so this costs implementors nothing.
pub trait Endpoint: Send {
    /// Called once when the flow starts (sender) or is registered (receiver).
    fn activate(&mut self, ctx: &mut EndpointCtx);

    /// Called for every packet addressed to this flow at this host.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx);

    /// Called when a previously requested timer fires.
    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx);

    /// True once the endpoint has no further work; the host then drops it.
    fn finished(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::CTRL_WIRE;
    use crate::packet::{Payload, TrafficClass};

    struct Echo {
        done: bool,
    }

    impl Endpoint for Echo {
        fn activate(&mut self, ctx: &mut EndpointCtx) {
            ctx.set_timer(ctx.now + flexpass_simcore::time::TimeDelta::micros(1), 7);
        }
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
            ctx.send(Packet::new(
                pkt.flow,
                pkt.dst,
                pkt.src,
                CTRL_WIRE,
                TrafficClass::NewCtrl,
                Payload::CreditStop,
            ));
        }
        fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
            assert_eq!(token, 7);
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: 1,
                stats: TxStats::default(),
            });
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn ctx_collects_outputs() {
        let mut arena = PacketArena::new();
        let mut tx_ids = Vec::new();
        let mut timers = Vec::new();
        let mut app = Vec::new();
        let mut ep = Echo { done: false };
        {
            let mut ctx =
                EndpointCtx::new(Time::ZERO, &mut arena, &mut tx_ids, &mut timers, &mut app);
            ep.activate(&mut ctx);
            let pkt = Packet::new(
                1,
                0,
                1,
                CTRL_WIRE,
                TrafficClass::NewCtrl,
                Payload::CreditStop,
            );
            ep.on_packet(&pkt, &mut ctx);
            ep.on_timer(7, &mut ctx);
        }
        assert_eq!(timers.len(), 1);
        assert!(matches!(timers[0], TimerCmd::Set(_, 7)));
        let mut tx = Vec::new();
        arena.drain_into(&mut tx_ids, &mut tx);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].src, 1);
        assert_eq!(tx[0].dst, 0);
        assert_eq!(app.len(), 1);
        assert!(ep.finished());
        assert_eq!(arena.live(), 0);
    }
}
