//! Output-queued switch with shared-buffer dynamic thresholds, per-class
//! queue mapping, and ECMP routing.

use flexpass_simcore::units::WireBytes;

use crate::arena::{PacketArena, PacketId};
use crate::audit;
use crate::packet::{Packet, TrafficClass};
use crate::port::{Port, PortConfig};
use crate::queue::DropReason;

/// How packets map to egress queues (the DSCP → queue configuration an
/// operator would install).
#[derive(Clone, Copy, Debug)]
pub enum ClassMap {
    /// Everything shares queue 0 (plain FIFO switch).
    Single,
    /// Explicit per-class queue indices. Classes may share an index (the
    /// Naïve scheme maps `NewData` and `Legacy` to the same queue).
    Split {
        /// Queue for [`TrafficClass::Credit`].
        credit: usize,
        /// Queue for [`TrafficClass::NewData`].
        new_data: usize,
        /// Queue for [`TrafficClass::NewCtrl`].
        new_ctrl: usize,
        /// Queue for [`TrafficClass::Legacy`].
        legacy: usize,
    },
    /// Homa-style: data packets choose `base + pkt.prio`; control packets
    /// and legacy traffic get fixed queues.
    ByPrio {
        /// First data queue index; packet priority is added to it.
        base: usize,
        /// Number of priority queues.
        n: usize,
        /// Queue for control packets (grants, ACKs).
        ctrl: usize,
        /// Queue for legacy traffic.
        legacy: usize,
    },
}

impl ClassMap {
    /// Egress queue index for `pkt`.
    pub fn queue_for(&self, pkt: &Packet) -> usize {
        match *self {
            ClassMap::Single => 0,
            ClassMap::Split {
                credit,
                new_data,
                new_ctrl,
                legacy,
            } => match pkt.class {
                TrafficClass::Credit => credit,
                TrafficClass::NewData => new_data,
                TrafficClass::NewCtrl => new_ctrl,
                TrafficClass::Legacy => legacy,
            },
            ClassMap::ByPrio {
                base,
                n,
                ctrl,
                legacy,
            } => match pkt.class {
                TrafficClass::Legacy => legacy,
                TrafficClass::NewCtrl | TrafficClass::Credit => ctrl,
                TrafficClass::NewData => base + (pkt.prio as usize).min(n - 1),
            },
        }
    }
}

/// Configuration shared by every port of a switch (and by host NICs, which
/// the paper configures identically to edge switches).
#[derive(Clone, Debug)]
pub struct SwitchProfile {
    /// Per-port queue set and scheduling.
    pub port: PortConfig,
    /// DSCP → queue mapping.
    pub class_map: ClassMap,
    /// Shared buffer `(total, dynamic threshold alpha)`; `None` disables
    /// shared-buffer admission (host NICs).
    pub shared_buffer: Option<(WireBytes, f64)>,
}

/// Per-switch drop counters, by reason.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchCounters {
    /// Drops due to the shared buffer / dynamic threshold.
    pub dropped_buffer: u64,
    /// Drops due to a queue's static cap (credit queue overflow).
    pub dropped_cap: u64,
    /// Selective (red) drops.
    pub dropped_red: u64,
    /// Packets forwarded.
    pub forwarded: u64,
}

/// A point-in-time view of one port's queue occupancy.
///
/// Reused as a scratch buffer across samples: [`Switch::sample_port_into`]
/// clears and refills it, so the backing `Vec`s are allocated once per
/// observer, not twice per telemetry sample.
#[derive(Clone, Debug, Default)]
pub struct QueueSample {
    /// Bytes per queue.
    pub bytes: Vec<WireBytes>,
    /// Red bytes per queue.
    pub red_bytes: Vec<WireBytes>,
}

impl QueueSample {
    /// An empty sample, ready to be filled by [`Switch::sample_port_into`].
    pub fn new() -> Self {
        QueueSample::default()
    }

    /// Drops the previous sample's contents, keeping capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.red_bytes.clear();
    }
}

/// An output-queued switch.
#[derive(Debug)]
pub struct Switch {
    /// Topology tier (ToR = 0, Agg = 1, Core = 2); selects the ECMP hash
    /// slice so both flow directions make aligned choices.
    pub tier: u8,
    /// Egress ports.
    pub ports: Vec<Port>,
    /// ECMP candidates: `routes[dst_host]` lists egress port indices on
    /// shortest paths towards that host.
    pub routes: Vec<Vec<u16>>,
    class_map: ClassMap,
    shared_buffer: Option<(WireBytes, f64)>,
    counters: SwitchCounters,
    audit_id: audit::ComponentId,
}

impl Switch {
    /// Creates a switch with `nports` identical ports from `profile`.
    pub fn new(profile: &SwitchProfile, nports: usize, tier: u8) -> Self {
        Switch {
            tier,
            ports: (0..nports).map(|_| Port::new(&profile.port)).collect(),
            routes: Vec::new(),
            class_map: profile.class_map,
            shared_buffer: profile.shared_buffer,
            counters: SwitchCounters::default(),
            audit_id: audit::new_component_id(),
        }
    }

    /// Drop / forward counters.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// The class map in use.
    pub fn class_map(&self) -> ClassMap {
        self.class_map
    }

    /// Selects the egress port for `pkt` by ECMP over the shortest-path
    /// candidates, using the tier-specific slice of the symmetric flow hash.
    ///
    /// # Panics
    ///
    /// Panics if no route exists to the packet's destination.
    pub fn route(&self, pkt: &Packet) -> usize {
        let cands = self
            .routes
            .get(pkt.dst)
            .expect("destination host in route table");
        if let &[only] = cands.as_slice() {
            return only as usize;
        }
        assert!(!cands.is_empty(), "no route to host {}", pkt.dst);
        let h = pkt.path_hash >> (16 * self.tier as u64);
        // lint:allow(panic-path): modulus over the candidate count, which
        // the assert above proves non-zero; the result indexes in range.
        let pick = cands.get((h % cands.len() as u64) as usize);
        *pick.expect("ECMP modulus stays in range") as usize
    }

    /// Bytes currently admitted against the shared buffer (dynamically
    /// thresholded queues only; statically capped queues are exempt).
    pub fn shared_used(&self) -> WireBytes {
        self.ports
            .iter()
            .map(|p| {
                (0..p.num_queues())
                    .filter(|&qi| p.queue(qi).config().cap_bytes == WireBytes::MAX)
                    .map(|qi| p.queue(qi).bytes())
                    .sum::<WireBytes>()
            })
            .sum()
    }

    /// Attempts to enqueue the packet behind `id` at the routed egress
    /// port. Returns the port index on success so the caller can kick the
    /// port's service loop; on `Err` the caller keeps the id (and must
    /// release it).
    pub fn receive(
        &mut self,
        arena: &mut PacketArena,
        id: PacketId,
    ) -> Result<usize, (DropReason, PacketId)> {
        let (port_idx, qidx, size) = {
            let pkt = arena.get(id).expect("received id is live");
            (self.route(pkt), self.class_map.queue_for(pkt), pkt.wire)
        };

        // Dynamic shared-buffer admission (statically capped queues such as
        // the credit queue manage their own tiny buffer instead).
        let port = self.ports.get(port_idx).expect("routed port in range");
        if port.queue(qidx).config().cap_bytes == WireBytes::MAX {
            if let Some((total, alpha)) = self.shared_buffer {
                let used = self.shared_used();
                let free = total.saturating_sub(used);
                let threshold = WireBytes::from_f64(alpha * free.as_f64());
                let qbytes = port.queue(qidx).bytes();
                if used + size > total || qbytes + size > threshold {
                    self.counters.dropped_buffer += 1;
                    return Err((DropReason::Buffer, id));
                }
                audit::shared_buffer(self.audit_id, used + size, total);
            }
        }

        let port = self.ports.get_mut(port_idx).expect("routed port in range");
        match port.enqueue(arena, qidx, id) {
            Ok(()) => {
                self.counters.forwarded += 1;
                Ok(port_idx)
            }
            Err(r) => {
                match r {
                    DropReason::QueueCap => self.counters.dropped_cap += 1,
                    DropReason::SelectiveRed => self.counters.dropped_red += 1,
                    DropReason::Buffer => self.counters.dropped_buffer += 1,
                }
                Err((r, id))
            }
        }
    }

    /// Snapshot of one port's queues, written into the caller's reusable
    /// scratch buffer (cleared first) — the per-sample `collect` pair this
    /// replaces was the hot path's last steady-state allocation site.
    pub fn sample_port_into(&self, port_idx: usize, out: &mut QueueSample) {
        let p = self.ports.get(port_idx).expect("sampled port in range");
        out.clear();
        for q in 0..p.num_queues() {
            out.bytes.push(p.queue(q).bytes());
            out.red_bytes.push(p.queue(q).red_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{CTRL_WIRE, DATA_WIRE};
    use crate::packet::{CreditInfo, DataInfo, Payload, Subflow};
    use crate::port::QueueSched;
    use crate::queue::QueueConfig;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::Bytes;

    fn flexpass_profile() -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate: Rate::from_gbps(10),
                queues: vec![
                    (
                        QueueConfig::capped(WireBytes::new(1_000)),
                        QueueSched::strict(0).shaped(Rate::from_mbps(273), CTRL_WIRE * 2),
                    ),
                    (
                        QueueConfig::plain()
                            .with_ecn(WireBytes::new(65_000))
                            .with_red_threshold(WireBytes::new(150_000)),
                        QueueSched::weighted(1, 0.5),
                    ),
                    (
                        QueueConfig::plain().with_ecn(WireBytes::new(100_000)),
                        QueueSched::weighted(1, 0.5),
                    ),
                ],
            },
            class_map: ClassMap::Split {
                credit: 0,
                new_data: 1,
                new_ctrl: 1,
                legacy: 2,
            },
            shared_buffer: Some((WireBytes::new(4_500_000), 0.25)),
        }
    }

    fn data_to(dst: usize, class: TrafficClass, red: bool) -> Packet {
        let p = Packet::new(
            5,
            0,
            dst,
            DATA_WIRE,
            class,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Reactive,
                payload: Bytes::new(1460),
                retx: false,
            }),
        );
        if red {
            p.red()
        } else {
            p
        }
    }

    fn wired_switch() -> Switch {
        let mut sw = Switch::new(&flexpass_profile(), 2, 0);
        // Hosts 0 and 1 behind ports 0 and 1.
        sw.routes = vec![vec![0], vec![1]];
        sw
    }

    /// Receive a packet value, releasing the slot again on a drop (what
    /// the simulator's arrive path does).
    fn recv(sw: &mut Switch, a: &mut PacketArena, pkt: Packet) -> Result<usize, DropReason> {
        let id = a.acquire(pkt);
        sw.receive(a, id).map_err(|(r, id)| {
            a.release(id);
            r
        })
    }

    #[test]
    fn class_map_split() {
        let sw = wired_switch();
        let credit = Packet::new(
            5,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        );
        assert_eq!(sw.class_map().queue_for(&credit), 0);
        assert_eq!(
            sw.class_map()
                .queue_for(&data_to(1, TrafficClass::NewData, false)),
            1
        );
        assert_eq!(
            sw.class_map()
                .queue_for(&data_to(1, TrafficClass::Legacy, false)),
            2
        );
    }

    #[test]
    fn class_map_by_prio() {
        let cm = ClassMap::ByPrio {
            base: 1,
            n: 8,
            ctrl: 0,
            legacy: 1,
        };
        let p = data_to(1, TrafficClass::NewData, false).with_prio(3);
        assert_eq!(cm.queue_for(&p), 4);
        // Legacy maps to the highest-priority data queue (paper footnote 3).
        assert_eq!(cm.queue_for(&data_to(1, TrafficClass::Legacy, false)), 1);
        // Priorities beyond the range clamp.
        let p = data_to(1, TrafficClass::NewData, false).with_prio(200);
        assert_eq!(cm.queue_for(&p), 8);
    }

    #[test]
    fn routes_and_forwards() {
        let mut sw = wired_switch();
        let mut a = PacketArena::new();
        let port = recv(&mut sw, &mut a, data_to(1, TrafficClass::NewData, false)).unwrap();
        assert_eq!(port, 1);
        assert_eq!(sw.counters().forwarded, 1);
        assert_eq!(sw.ports[1].backlog_bytes(), DATA_WIRE);
    }

    #[test]
    fn selective_red_drop_at_switch() {
        let mut sw = wired_switch();
        let mut a = PacketArena::new();
        // 150 kB red threshold: 97 full packets fit, the 98th red is dropped.
        let mut admitted = 0u64;
        for _ in 0..120 {
            if recv(&mut sw, &mut a, data_to(1, TrafficClass::NewData, true)).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 150_000 / DATA_WIRE.get());
        assert!(sw.counters().dropped_red > 0);
        // Green packets still admitted past the red threshold.
        assert!(recv(&mut sw, &mut a, data_to(1, TrafficClass::NewData, false)).is_ok());
    }

    #[test]
    fn dynamic_threshold_limits_queue() {
        // Alpha = 0.25, total 4.5 MB: an empty switch admits one queue up to
        // threshold alpha/(1+alpha) * total = 0.9 MB.
        let mut sw = wired_switch();
        let mut a = PacketArena::new();
        let mut admitted_bytes = 0u64;
        for _ in 0..2000 {
            match recv(&mut sw, &mut a, data_to(1, TrafficClass::Legacy, false)) {
                Ok(_) => admitted_bytes += DATA_WIRE.get(),
                Err(r) => {
                    assert_eq!(r, DropReason::Buffer);
                    break;
                }
            }
        }
        let expected = (0.25f64 / 1.25 * 4_500_000.0) as u64;
        assert!(
            (admitted_bytes as i64 - expected as i64).unsigned_abs() < 5 * DATA_WIRE.get(),
            "admitted {admitted_bytes}, expected ~{expected}"
        );
    }

    #[test]
    fn credit_queue_exempt_from_shared_buffer() {
        let mut sw = wired_switch();
        let mut a = PacketArena::new();
        // Fill legacy queue to its dynamic limit.
        while recv(&mut sw, &mut a, data_to(1, TrafficClass::Legacy, false)).is_ok() {}
        // Credits still admitted (own tiny buffer).
        let credit = Packet::new(
            5,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        );
        assert!(recv(&mut sw, &mut a, credit).is_ok());
    }

    #[test]
    fn sample_reports_occupancy() {
        let mut sw = wired_switch();
        let mut a = PacketArena::new();
        recv(&mut sw, &mut a, data_to(1, TrafficClass::NewData, true)).unwrap();
        recv(&mut sw, &mut a, data_to(1, TrafficClass::Legacy, false)).unwrap();
        let mut s = QueueSample::new();
        sw.sample_port_into(1, &mut s);
        assert_eq!(s.bytes[1], DATA_WIRE);
        assert_eq!(s.red_bytes[1], DATA_WIRE);
        assert_eq!(s.bytes[2], DATA_WIRE);
        assert_eq!(s.red_bytes[2], WireBytes::ZERO);
        // Refill reuses the buffers: same shape, no stale entries.
        sw.sample_port_into(0, &mut s);
        assert_eq!(s.bytes.len(), 3);
        assert_eq!(s.bytes[1], WireBytes::ZERO);
    }
}
