//! The event-driven simulation driver.
//!
//! [`Sim`] owns the wired topology, the event calendar, and the transport
//! factory. Its inner loop dispatches four event kinds: packet arrivals,
//! port service opportunities, endpoint timers, and flow starts. All
//! behaviour is deterministic given the topology, factory, and workload.

use flexpass_simcore::event::EventQueue;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::{Rate, Time, TimeDelta};

use crate::arena::{PacketArena, PacketId};
use crate::audit;
use crate::endpoint::{AppEvent, Endpoint, TimerCmd};
use crate::host::{Host, Scratch};
use crate::packet::{FlowId, FlowSpec, Packet};
use crate::port::{Decision, Port};
use crate::queue::DropReason;
use crate::switch::{QueueSample, Switch};
use crate::topology::Topology;
use crate::trace;

/// Index into the simulator's node table.
pub type NodeId = usize;

/// A network element.
pub enum Node {
    /// A switch.
    Switch(Switch),
    /// An end host.
    Host(Host),
}

impl Node {
    /// Egress port `idx` of this node (hosts expose their NIC as port 0).
    pub fn port_mut(&mut self, idx: usize) -> &mut Port {
        match self {
            Node::Switch(s) => s.ports.get_mut(idx).expect("port index within switch"),
            Node::Host(h) => {
                debug_assert_eq!(idx, 0);
                &mut h.nic
            }
        }
    }

    /// Immutable port access.
    pub fn port(&self, idx: usize) -> &Port {
        match self {
            Node::Switch(s) => s.ports.get(idx).expect("port index within switch"),
            Node::Host(h) => {
                debug_assert_eq!(idx, 0);
                &h.nic
            }
        }
    }
}

/// Static facts transports may consult when a flow is created.
#[derive(Clone, Copy, Debug)]
pub struct NetEnv {
    /// Host access link rate.
    pub host_rate: Rate,
    /// Worst-case propagation-only RTT in the fabric.
    pub base_rtt: TimeDelta,
    /// Number of hosts.
    pub n_hosts: usize,
}

/// Hook points for measurement. All methods have empty defaults; recorders
/// implement what they need.
pub trait NetObserver {
    /// A flow was started (its spec is now known to the metrics layer).
    fn on_flow_start(&mut self, _spec: &FlowSpec, _now: Time) {}
    /// An endpoint raised an application event.
    fn on_app_event(&mut self, _ev: &AppEvent, _now: Time) {}
    /// A data packet reached its destination host.
    fn on_delivered(&mut self, _pkt: &Packet, _now: Time) {}
    /// A packet was dropped.
    fn on_drop(&mut self, _pkt: &Packet, _reason: DropReason, _node: NodeId, _now: Time) {}
    /// Periodic queue occupancy sample of one switch port.
    fn on_queue_sample(&mut self, _node: NodeId, _port: usize, _sample: &QueueSample, _now: Time) {}
}

/// An observer that records nothing.
pub struct NullObserver;

impl NetObserver for NullObserver {}

/// Which endpoint halves of a flow this simulator instance owns. A serial
/// run owns both; a partitioned run whose flow crosses a domain cut splits
/// the flow, registering the sender half in the source host's domain and
/// the receiver half in the destination host's domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowRole {
    /// Both endpoint halves (serial runs and intra-domain flows).
    Both,
    /// Sender half only (source host is local, destination is foreign).
    Sender,
    /// Receiver half only (destination host is local, source is foreign).
    Receiver,
}

/// Partition membership shared by every domain of a partitioned run: which
/// domain each global node id belongs to, and which domain this simulator
/// instance is. Installed by the parallel engine; `None` (the serial case)
/// keeps every datapath branch on its pre-partition path.
#[derive(Clone, Debug)]
pub struct PartitionCtx {
    /// Domain owning each node, indexed by global [`NodeId`].
    pub domain_of: std::sync::Arc<Vec<u32>>,
    /// The domain this simulator instance runs.
    pub me: u32,
}

/// Creates the two endpoint halves of each flow. Scheme layers (oWF, Naïve,
/// FlexPass, ...) implement this to mix transports across hosts.
///
/// `Send` is a supertrait so a factory can be built on the orchestrating
/// thread and moved into the worker thread that drives the simulation
/// (see the experiments crate's parallel sweep). Factories hold only
/// configuration and the deployment map, so this is free in practice.
pub trait TransportFactory: Send {
    /// Builds the sender endpoint.
    fn sender(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint>;
    /// Builds the receiver endpoint.
    fn receiver(&mut self, flow: &FlowSpec, env: &NetEnv) -> Box<dyn Endpoint>;
    /// An independent copy for a partition domain, or `None` if the
    /// factory carries per-run state that cannot be duplicated. Returning
    /// `Some` asserts that endpoint construction is a pure function of
    /// `(flow, env)` — the clones never compare notes, so any shared
    /// mutable state would diverge between domains. `None` (the default)
    /// makes the parallel engine fall back to the serial path.
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        None
    }
}

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// A packet finishes propagating to `node`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The packet's arena id (the packet itself stays in the slab).
        pkt: PacketId,
    },
    /// Egress port `port` of `node` may transmit.
    PortReady {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: usize,
    },
    /// An endpoint timer fires.
    Timer {
        /// Host node.
        host: NodeId,
        /// Flow owning the timer.
        flow: FlowId,
        /// Opaque token the endpoint registered.
        token: u64,
    },
    /// A scheduled flow begins.
    FlowStart {
        /// Index into the flow table.
        idx: usize,
    },
    /// Periodic queue sampling tick.
    Sample,
}

/// The simulator.
pub struct Sim<O: NetObserver> {
    events: EventQueue<Event>,
    /// All nodes (public for post-run counter inspection).
    pub nodes: Vec<Node>,
    /// Node id of each host.
    pub hosts: Vec<NodeId>,
    /// Rack of each host.
    pub rack_of: Vec<usize>,
    flows: Vec<FlowSpec>,
    factory: Box<dyn TransportFactory>,
    env: NetEnv,
    /// The measurement observer.
    pub observer: O,
    /// The packet slab: every in-flight packet lives here, addressed by
    /// generation-checked [`PacketId`]s.
    arena: PacketArena,
    scratch: Scratch,
    /// Reusable queue-sample buffer (cleared, never reallocated).
    sample_scratch: QueueSample,
    /// Audit identities for the scratch buffers `(tx, timers, app)`.
    scratch_audit: [audit::ComponentId; 3],
    completed: usize,
    started: usize,
    sample_every: Option<TimeDelta>,
    /// Non-congestion loss injection: `(probability, rng)`.
    loss: Option<(f64, SimRng)>,
    /// Packets dropped by loss injection.
    injected_losses: u64,
    /// Partition membership (`None` in a serial run).
    partition: Option<PartitionCtx>,
    /// Endpoint halves owned per flow, parallel to `flows`.
    roles: Vec<FlowRole>,
    /// Packets that crossed a domain cut this window: `(arrival instant,
    /// destination node, packet)`, drained by the parallel engine into the
    /// owning domain's channel. Always empty in a serial run.
    pub(crate) outbox: Vec<(Time, NodeId, Packet)>,
    /// Instant the most recent flow completed (receiver side).
    last_completion: Time,
    /// Progress probe for arena statistics (the calendar holds its own
    /// clone for event counts).
    progress: Option<std::sync::Arc<flexpass_simcore::ProgressProbe>>,
}

impl<O: NetObserver> Sim<O> {
    /// Builds a simulator over a wired topology.
    pub fn new(topo: Topology, factory: Box<dyn TransportFactory>, observer: O) -> Self {
        Self::with_flow_capacity(topo, factory, observer, 0)
    }

    /// Like [`Sim::new`], but pre-sizes the event calendar and flow table
    /// for `expected_flows` scheduled flows, avoiding repeated growth at
    /// sweep start. Purely a capacity hint: scheduling more flows works,
    /// and simulated outcomes are identical either way.
    pub fn with_flow_capacity(
        topo: Topology,
        factory: Box<dyn TransportFactory>,
        observer: O,
        expected_flows: usize,
    ) -> Self {
        let env = NetEnv {
            host_rate: topo.host_rate,
            base_rtt: topo.base_rtt,
            n_hosts: topo.hosts.len(),
        };
        // Each scheduled flow contributes its FlowStart entry up front plus
        // a handful of in-flight events while active; a small multiple of
        // the flow count is a good calendar working-set estimate.
        let cal = expected_flows.saturating_mul(4);
        let mut nodes = topo.nodes;

        // Arena sizing: bounded queues state their worst-case packet count
        // (capacity_hint counts minimum-size frames), which is a ceiling on
        // the live-packet population, not a target — cap the hinted term so
        // a large Clos with deep buffers does not pre-reserve megabytes per
        // run. The cap scales with host count: a fixed 65,536 was tuned for
        // the paper's 192-host fabric and silently undersized 10k-host
        // topologies, forcing warm-path arena growth. Warm-up growth
        // (tracked by the arena) still absorbs any residual shortfall.
        const MAX_HINTED_SLOTS: usize = 65_536;
        const HINT_SLOTS_PER_HOST: usize = 32;
        let hinted_cap = MAX_HINTED_SLOTS.max(topo.hosts.len().saturating_mul(HINT_SLOTS_PER_HOST));
        let mut hinted: usize = 0;
        for node in &nodes {
            let ports: &[Port] = match node {
                Node::Switch(s) => &s.ports,
                Node::Host(h) => std::slice::from_ref(&h.nic),
            };
            for p in ports {
                for qi in 0..p.num_queues() {
                    if let Some(h) = p.queue(qi).config().capacity_hint() {
                        hinted = hinted.saturating_add(h);
                    }
                }
            }
        }
        let slots = expected_flows
            .saturating_mul(16)
            .max(hinted.min(hinted_cap))
            .max(256);

        // Per-host flow tables: each flow registers two endpoints; spread
        // them across hosts with headroom for skewed workloads.
        let n_hosts = topo.hosts.len().max(1);
        let per_host = expected_flows.saturating_mul(4).div_ceil(n_hosts);
        for node in &mut nodes {
            if let Node::Host(h) = node {
                h.reserve_flows(per_host);
            }
        }

        Sim {
            events: EventQueue::with_capacity(cal),
            nodes,
            hosts: topo.hosts,
            rack_of: topo.rack_of,
            flows: Vec::with_capacity(expected_flows),
            factory,
            env,
            observer,
            arena: PacketArena::with_capacity(slots),
            scratch: Scratch::default(),
            sample_scratch: QueueSample::new(),
            scratch_audit: [
                audit::new_component_id(),
                audit::new_component_id(),
                audit::new_component_id(),
            ],
            completed: 0,
            started: 0,
            sample_every: None,
            loss: None,
            injected_losses: 0,
            partition: None,
            roles: Vec::with_capacity(expected_flows),
            outbox: Vec::with_capacity(64),
            last_completion: Time::ZERO,
            progress: None,
        }
    }

    /// Installs partition membership (parallel engine only). From here on
    /// packets transmitted towards foreign nodes are diverted to the
    /// outbox instead of the local calendar, and periodic sampling keeps
    /// rescheduling until [`Sim::stop_sampling`] — the local flow table no
    /// longer knows when the *global* run is done.
    pub(crate) fn set_partition(&mut self, ctx: PartitionCtx) {
        self.partition = Some(ctx);
    }

    /// True when `node` belongs to another partition domain. Always false
    /// in a serial run — the whole cross-domain path is unreachable there.
    fn is_foreign(&self, node: NodeId) -> bool {
        match &self.partition {
            Some(ctx) => match ctx.domain_of.get(node) {
                Some(&d) => d != ctx.me,
                None => false,
            },
            None => false,
        }
    }

    /// Arena occupancy and growth statistics `(live, high_water, capacity,
    /// grows)` — growths after warm-up mean the preallocation was short.
    pub fn arena_stats(&self) -> (usize, usize, usize, u64) {
        (
            self.arena.live(),
            self.arena.high_water(),
            self.arena.capacity(),
            self.arena.grows(),
        )
    }

    /// Enables random non-congestion packet loss (§4.3 "Handling proactive
    /// data packet losses": e.g. switch failures or link corruption). Every
    /// packet arriving at a *switch* is dropped with probability `p`,
    /// independently, from a deterministic seeded stream. Transports must
    /// recover; proactive sub-flows use their highest-priority
    /// retransmission path.
    pub fn inject_loss(&mut self, p: f64, seed: u64) {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.loss = Some((p, SimRng::new(seed ^ 0x10_55)));
    }

    /// Packets dropped by the loss injector so far.
    pub fn injected_losses(&self) -> u64 {
        self.injected_losses
    }

    /// Environment facts handed to transports.
    pub fn env(&self) -> NetEnv {
        self.env
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.events.now()
    }

    /// Total events processed (progress metric).
    pub fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    /// Release-mode past-time schedules the calendar clamped up to "now".
    /// Always 0 in a healthy run (debug builds panic instead); exposed so
    /// the condition is observable rather than silent.
    pub fn schedule_clamps(&self) -> u64 {
        self.events.clamped()
    }

    /// Cancellable timers successfully cancelled so far (run statistic).
    pub fn timers_cancelled(&self) -> u64 {
        self.events.cancelled()
    }

    /// Attaches a progress probe the event calendar publishes into while
    /// the simulation runs (see [`flexpass_simcore::progress`]). Purely
    /// observational — cannot change any simulated outcome.
    pub fn attach_progress(&mut self, probe: std::sync::Arc<flexpass_simcore::ProgressProbe>) {
        self.events.attach_probe(std::sync::Arc::clone(&probe));
        self.progress = Some(probe);
    }

    /// Number of flows that have completed (receiver side).
    pub fn flows_completed(&self) -> usize {
        self.completed
    }

    /// Number of flows scheduled.
    pub fn flows_scheduled(&self) -> usize {
        self.flows.len()
    }

    /// Number of flows whose endpoints have been created so far.
    pub fn flows_started(&self) -> usize {
        self.started
    }

    /// Enables periodic queue sampling with the given interval.
    pub fn enable_sampling(&mut self, every: TimeDelta) {
        if self.sample_every.is_none() {
            self.events.schedule(self.now() + every, Event::Sample);
        }
        self.sample_every = Some(every);
    }

    /// Schedules a flow for simulation.
    ///
    /// # Panics
    ///
    /// Panics if source and destination hosts coincide or are out of range.
    pub fn schedule_flow(&mut self, spec: FlowSpec) {
        self.schedule_flow_role(spec, FlowRole::Both);
    }

    /// Schedules a flow owning only the given endpoint halves (the
    /// partitioned engine splits a cut-crossing flow across two domains).
    ///
    /// # Panics
    ///
    /// Panics if source and destination hosts coincide or are out of range.
    pub fn schedule_flow_role(&mut self, spec: FlowSpec, role: FlowRole) {
        assert!(spec.src != spec.dst, "flow to self");
        assert!(spec.src < self.hosts.len() && spec.dst < self.hosts.len());
        let idx = self.flows.len();
        self.events.schedule(spec.start, Event::FlowStart { idx });
        self.flows.push(spec);
        self.roles.push(role);
    }

    /// Runs until the calendar empties or virtual time would pass `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.events.pop().expect("peeked");
            self.dispatch(now, ev);
            self.maybe_publish_arena();
        }
    }

    /// Runs every event strictly before `horizon` (the conservative-sync
    /// window of the partitioned engine: the exclusive bound means two
    /// domains can never both process an event at the horizon instant, so
    /// a cross-cut arrival injected *at* the horizon is still in this
    /// domain's future).
    pub fn run_window(&mut self, horizon: Time) {
        while let Some(t) = self.events.peek_time() {
            if t >= horizon {
                break;
            }
            let (now, ev) = self.events.pop().expect("peeked");
            self.dispatch(now, ev);
            self.maybe_publish_arena();
        }
    }

    /// Earliest pending event, or `None` when the calendar is empty. The
    /// partitioned engine's per-window global minimum is computed over
    /// these.
    pub fn next_event_time(&mut self) -> Option<Time> {
        self.events.peek_time()
    }

    /// Schedules the arrival of a packet handed over from another domain:
    /// the packet value enters this domain's private arena and its Arrive
    /// event joins the local calendar. `at` is never in this domain's past
    /// — conservative synchronization guarantees cross-cut arrivals land
    /// at or beyond the window horizon.
    pub fn inject_arrival(&mut self, at: Time, node: NodeId, pkt: Packet) {
        let pid = self.arena.acquire(pkt);
        self.events.schedule(at, Event::Arrive { node, pkt: pid });
    }

    /// Instant the most recent flow completed locally (receiver side);
    /// [`Time::ZERO`] if none has. The partitioned engine takes the max
    /// across domains to anchor the post-completion grace window exactly
    /// where the serial engine would.
    pub fn last_completion(&self) -> Time {
        self.last_completion
    }

    /// Stops periodic queue sampling (partitioned runs: the engine calls
    /// this at the first window barrier after global completion, mirroring
    /// the serial engine's "stop when the local flow table completes").
    pub fn stop_sampling(&mut self) {
        self.sample_every = None;
    }

    fn maybe_publish_arena(&mut self) {
        if let Some(probe) = &self.progress {
            // Piggyback on the calendar's publication cadence.
            if self.events.popped() & (flexpass_simcore::progress::PUBLISH_EVERY - 1) == 0 {
                // lint:allow(raw-cast): slot count widened for the probe
                probe.publish_arena(self.arena.grows(), self.arena.high_water() as u64);
            }
        }
    }

    /// Runs until every scheduled flow has completed (receiver side), then
    /// keeps draining for `grace` so senders can finish their own cleanup.
    ///
    /// # Panics
    ///
    /// Panics if the calendar empties before all flows complete (lost
    /// packets with no retransmission path — a transport bug).
    pub fn run_to_completion(&mut self, grace: TimeDelta) {
        while self.completed < self.flows.len() {
            match self.events.pop() {
                Some((now, ev)) => {
                    self.dispatch(now, ev);
                    self.maybe_publish_arena();
                }
                // lint:allow(panic-path): a drained calendar with incomplete
                // flows means a transport lost its retransmission path.
                None => panic!(
                    "event queue drained with {}/{} flows incomplete",
                    self.completed,
                    self.flows.len()
                ),
            }
        }
        let deadline = self.now() + grace;
        self.run_until(deadline);
    }

    fn dispatch(&mut self, now: Time, ev: Event) {
        trace::now(now);
        match ev {
            Event::Arrive { node, pkt } => self.arrive(now, node, pkt),
            Event::PortReady { node, port } => self.port_ready(now, node, port),
            Event::Timer { host, flow, token } => {
                self.scratch.clear();
                if let Some(Node::Host(h)) = self.nodes.get_mut(host) {
                    // If this delivery consumed the armed timer for the
                    // token, retire its table entry (the handle went stale
                    // when the calendar popped the entry).
                    if let Some(hd) = h.armed_handle(token) {
                        if !self.events.is_pending(hd) {
                            h.take_armed(token);
                        }
                    }
                    let mut ctx = self.scratch.ctx(now, &mut self.arena);
                    h.fire_timer(flow, token, &mut ctx);
                } else {
                    // lint:allow(panic-path): timers are only armed by hosts
                    unreachable!("timer on a switch");
                }
                self.flush(now, host);
            }
            Event::FlowStart { idx } => self.flow_start(now, idx),
            Event::Sample => {
                // Split borrow: the switch list is read-only while the
                // observer and the reusable sample buffer mutate.
                let Sim {
                    nodes,
                    observer,
                    sample_scratch,
                    ..
                } = self;
                for (n, node) in nodes.iter().enumerate() {
                    if let Node::Switch(sw) = node {
                        for p in 0..sw.ports.len() {
                            sw.sample_port_into(p, sample_scratch);
                            observer.on_queue_sample(n, p, sample_scratch, now);
                        }
                    }
                }
                if let Some(every) = self.sample_every {
                    // Partitioned domains cannot see global completion, so
                    // they resample until the engine calls stop_sampling
                    // at the completion barrier.
                    if self.partition.is_some() || self.completed < self.flows.len() {
                        self.events.schedule(now + every, Event::Sample);
                    }
                }
            }
        }
    }

    fn arrive(&mut self, now: Time, node: NodeId, pid: PacketId) {
        audit::wire_arrive(self.arena.get(pid).expect("arriving id is live"));
        if let Some((p, rng)) = &mut self.loss {
            if matches!(self.nodes.get(node), Some(Node::Switch(_))) && rng.chance(*p) {
                self.injected_losses += 1;
                let pkt = self.arena.release(pid).expect("arriving id is live");
                audit::flow_drop(&pkt);
                trace::injected_loss(node, &pkt);
                return;
            }
        }
        match self.nodes.get_mut(node).expect("arrival node id in range") {
            Node::Switch(sw) => {
                let res = sw.receive(&mut self.arena, pid);
                match res {
                    Ok(port_idx) => {
                        let idle = sw
                            .ports
                            .get(port_idx)
                            .is_some_and(|p| p.busy_until.is_none());
                        if idle {
                            self.events.schedule(
                                now,
                                Event::PortReady {
                                    node,
                                    port: port_idx,
                                },
                            );
                        }
                    }
                    Err((reason, pid)) => {
                        let pkt = self.arena.release(pid).expect("dropped id is live");
                        audit::flow_drop(&pkt);
                        trace::dropped(node, &pkt, reason);
                        self.observer.on_drop(&pkt, reason, node, now)
                    }
                }
            }
            Node::Host(h) => {
                // Copy the packet out and retire its slot before the
                // endpoint callback: the ctx holds `&mut arena` so the
                // endpoint can stage replies into fresh slots.
                let pkt = self.arena.release(pid).expect("arriving id is live");
                debug_assert_eq!(h.host_id, pkt.dst, "misrouted packet");
                audit::flow_rx(&pkt);
                if pkt.is_data() {
                    self.observer.on_delivered(&pkt, now);
                }
                self.scratch.clear();
                {
                    let mut ctx = self.scratch.ctx(now, &mut self.arena);
                    h.deliver(&pkt, &mut ctx);
                }
                self.flush(now, node);
            }
        }
    }

    fn port_ready(&mut self, now: Time, node: NodeId, port: usize) {
        let p = self
            .nodes
            .get_mut(node)
            .expect("port-ready node id in range")
            .port_mut(port);
        // Clear any wake bookkeeping that is now in the past. This must
        // happen even on the early busy-return below: a shaper wake that
        // fires while the port is mid-transmission would otherwise leave
        // `pending_wake` stale forever, suppressing all future WaitUntil
        // scheduling — with a full shaped queue (arrivals dropped, so no
        // enqueue kicks either) the port would deadlock.
        if let Some(w) = p.pending_wake {
            if w <= now {
                p.pending_wake = None;
            }
        }
        if let Some(t) = p.busy_until {
            if t > now {
                return; // Still serializing; the end-of-tx event will come.
            }
        }
        p.busy_until = None;
        match p.next_packet(&mut self.arena, now) {
            Decision::Send(pid) => {
                let wire = self.arena.get(pid).expect("sent id is live").wire;
                let ser = p.serialize(wire);
                let peer = p.peer;
                let prop = p.prop;
                p.busy_until = Some(now + ser);
                audit::wire_depart(self.arena.get(pid).expect("sent id is live"));
                self.events
                    .schedule(now + ser, Event::PortReady { node, port });
                if self.is_foreign(peer) {
                    // The link crosses a domain cut: the packet leaves this
                    // domain's arena (its id dies here — generation safety
                    // survives the handoff) and rides the outbox to the
                    // peer domain, where it re-enters that domain's arena.
                    let pkt = self.arena.release(pid).expect("sent id is live");
                    self.outbox.push((now + ser + prop, peer, pkt));
                } else {
                    self.events.schedule(
                        now + ser + prop,
                        Event::Arrive {
                            node: peer,
                            pkt: pid,
                        },
                    );
                }
            }
            Decision::WaitUntil(t) => {
                if p.pending_wake.is_none_or(|w| t < w) {
                    p.pending_wake = Some(t);
                    self.events.schedule(t, Event::PortReady { node, port });
                }
            }
            Decision::Idle => {}
        }
    }

    fn flow_start(&mut self, now: Time, idx: usize) {
        self.started += 1;
        let spec = *self.flows.get(idx).expect("flow index from schedule_flow");
        let role = *self.roles.get(idx).expect("role recorded per flow");
        self.observer.on_flow_start(&spec, now);

        // Receiver first so the sender's first packet finds it (for a
        // split flow the halves start in different domains; the cut's
        // lookahead guarantees the first packet still arrives after the
        // receiver's own FlowStart at the same instant has run).
        if matches!(role, FlowRole::Both | FlowRole::Receiver) {
            let receiver = self.factory.receiver(&spec, &self.env);
            self.register_endpoint(now, spec.dst, spec.id, receiver);
        }
        if matches!(role, FlowRole::Both | FlowRole::Sender) {
            let sender = self.factory.sender(&spec, &self.env);
            self.register_endpoint(now, spec.src, spec.id, sender);
        }
    }

    fn register_endpoint(
        &mut self,
        now: Time,
        host_id: usize,
        flow: FlowId,
        ep: Box<dyn Endpoint>,
    ) {
        let node = *self.hosts.get(host_id).expect("host id in range");
        self.scratch.clear();
        if let Some(Node::Host(h)) = self.nodes.get_mut(node) {
            let mut ctx = self.scratch.ctx(now, &mut self.arena);
            h.register(flow, ep, &mut ctx);
        } else {
            // lint:allow(panic-path): topology construction pins host ids
            unreachable!("host id maps to a non-host node");
        }
        self.flush(now, node);
    }

    /// Drains the scratch buffers after a host callback: transmit packets
    /// through the NIC, schedule timers, surface app events.
    fn flush(&mut self, now: Time, node: NodeId) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for pid in scratch.tx.drain(..) {
            audit::flow_tx(self.arena.get(pid).expect("staged tx id is live"));
            let res = match self.nodes.get_mut(node).expect("flush node id in range") {
                Node::Host(h) => h.nic_enqueue(&mut self.arena, pid),
                // lint:allow(panic-path): flush is only called for hosts
                Node::Switch(_) => unreachable!("flush on a switch"),
            };
            match res {
                Ok(_q) => {
                    let nic_idle = self
                        .nodes
                        .get(node)
                        .is_some_and(|n| n.port(0).busy_until.is_none());
                    if nic_idle {
                        self.events
                            .schedule(now, Event::PortReady { node, port: 0 });
                    }
                }
                Err((reason, pid)) => {
                    let pkt = self.arena.release(pid).expect("dropped id is live");
                    audit::flow_drop(&pkt);
                    trace::dropped(node, &pkt, reason);
                    self.observer.on_drop(&pkt, reason, node, now)
                }
            }
        }
        if !scratch.timers.is_empty() {
            let h = match self.nodes.get_mut(node).expect("flush node id in range") {
                Node::Host(h) => h,
                // lint:allow(panic-path): flush is only called for hosts
                Node::Switch(_) => unreachable!("flush on a switch"),
            };
            for cmd in scratch.timers.drain(..) {
                // The flow a timer belongs to rides in the token's high
                // bits (tokens are namespaced per endpoint; see
                // [`timer_token`]).
                match cmd {
                    TimerCmd::Set(at, token) => {
                        self.events.schedule(
                            at.max(now),
                            Event::Timer {
                                host: node,
                                flow: token >> 16,
                                token,
                            },
                        );
                    }
                    TimerCmd::Arm(at, token) => {
                        if let Some(old) = h.take_armed(token) {
                            self.events.cancel(old);
                        }
                        let hd = self.events.schedule_cancelable(
                            at.max(now),
                            Event::Timer {
                                host: node,
                                flow: token >> 16,
                                token,
                            },
                        );
                        h.arm_timer(token, hd);
                    }
                    TimerCmd::Cancel(token) => {
                        if let Some(old) = h.take_armed(token) {
                            self.events.cancel(old);
                            trace::timer_cancel(token);
                        }
                    }
                }
            }
        }
        for ev in scratch.app.drain(..) {
            if matches!(ev, AppEvent::FlowCompleted { .. }) {
                self.completed += 1;
                self.last_completion = now;
            }
            self.observer.on_app_event(&ev, now);
        }
        // Prove the scratch buffers are reused, not replaced: capacity may
        // only grow (warm-up), never shrink.
        if audit::is_active() {
            let (tx, timers, app) = scratch.capacities();
            let [tx_id, timers_id, app_id] = self.scratch_audit;
            audit::scratch_capacity(tx_id, tx as u64);
            audit::scratch_capacity(timers_id, timers as u64);
            audit::scratch_capacity(app_id, app as u64);
        }
        self.scratch = scratch;
    }
}

/// Builds a timer token namespaced by flow id: the simulator routes the
/// timer back to the owning endpoint via the high bits.
///
/// # Examples
///
/// ```
/// use flexpass_simnet::sim::timer_token;
///
/// let t = timer_token(42, 3);
/// assert_eq!(t >> 16, 42);
/// assert_eq!(t & 0xFFFF, 3);
/// ```
pub fn timer_token(flow: FlowId, kind: u16) -> u64 {
    (flow << 16) | kind as u64
}

/// Extracts the endpoint-local kind from a timer token.
pub fn timer_kind(token: u64) -> u16 {
    (token & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{data_wire_bytes, packets_for, payload_of_packet, CTRL_WIRE};
    use crate::endpoint::{EndpointCtx, RxStats, TxStats};
    use crate::packet::{DataInfo, Payload, Subflow, TrafficClass};
    use crate::port::{PortConfig, QueueSched};
    use crate::queue::QueueConfig;
    use crate::switch::ClassMap;
    use crate::switch::SwitchProfile;
    use crate::topology::ClosParams;
    use flexpass_simcore::units::{Bytes, WireBytes};

    fn profile(rate: Rate) -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate,
                queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
            },
            class_map: ClassMap::Single,
            shared_buffer: None,
        }
    }

    /// A trivially simple transport: the sender blasts every packet at once
    /// (no congestion control); the receiver counts bytes and completes.
    struct BlastSender {
        spec: FlowSpec,
        sent: bool,
    }

    impl Endpoint for BlastSender {
        fn activate(&mut self, ctx: &mut EndpointCtx) {
            let n = packets_for(self.spec.size);
            for i in 0..n.get() {
                let pay = payload_of_packet(self.spec.size, i);
                ctx.send(Packet::new(
                    self.spec.id,
                    self.spec.src,
                    self.spec.dst,
                    data_wire_bytes(pay),
                    TrafficClass::Legacy,
                    Payload::Data(DataInfo {
                        flow_seq: i,
                        sub_seq: i,
                        sub: Subflow::Only,
                        payload: pay,
                        retx: false,
                    }),
                ));
            }
            self.sent = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: TxStats::default(),
            });
        }
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
        fn finished(&self) -> bool {
            self.sent
        }
    }

    struct CountReceiver {
        spec: FlowSpec,
        got: Bytes,
        done: bool,
    }

    impl Endpoint for CountReceiver {
        fn activate(&mut self, _ctx: &mut EndpointCtx) {}
        fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
            self.got += pkt.payload_bytes();
            if self.got >= self.spec.size && !self.done {
                self.done = true;
                ctx.emit(AppEvent::FlowCompleted {
                    flow: self.spec.id,
                    stats: RxStats::default(),
                });
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
        fn finished(&self) -> bool {
            self.done
        }
    }

    struct BlastFactory;

    impl TransportFactory for BlastFactory {
        fn sender(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
            Box::new(BlastSender {
                spec: *flow,
                sent: false,
            })
        }
        fn receiver(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
            Box::new(CountReceiver {
                spec: *flow,
                got: Bytes::ZERO,
                done: false,
            })
        }
    }

    struct FctObserver {
        start: Time,
        done_at: Option<Time>,
    }

    impl NetObserver for FctObserver {
        fn on_flow_start(&mut self, _spec: &FlowSpec, now: Time) {
            self.start = now;
        }
        fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
            if matches!(ev, AppEvent::FlowCompleted { .. }) {
                self.done_at = Some(now);
            }
        }
    }

    fn flow(id: u64, src: usize, dst: usize, size: u64, start: Time) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            size: Bytes::new(size),
            start,
            tag: 0,
            fg: false,
        }
    }

    /// The whole driver must be `Send` so one sweep point can run on a
    /// worker thread: `Endpoint` and `TransportFactory` carry `Send`
    /// supertraits, everything else is owned data. A compile-time check.
    #[test]
    fn sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Sim<NullObserver>>();
        assert_send::<Box<dyn TransportFactory>>();
        assert_send::<Box<dyn Endpoint>>();
    }

    /// Regression: the hinted arena preallocation was capped at a fixed
    /// 65,536 slots tuned for the paper's 192-host fabric, silently
    /// undersizing 10k-host topologies (forcing warm-path growth). The
    /// cap now scales with host count; small fabrics keep the old bound.
    #[test]
    fn arena_hint_cap_scales_with_host_count() {
        let deep = SwitchProfile {
            port: PortConfig {
                rate: Rate::from_gbps(10),
                queues: vec![(
                    QueueConfig::capped(WireBytes::new(10_000_000)),
                    QueueSched::strict(0),
                )],
            },
            class_map: ClassMap::Single,
            shared_buffer: None,
        };
        let mk = |hosts: usize| {
            let topo = Topology::star(
                hosts,
                Rate::from_gbps(10),
                TimeDelta::micros(5),
                &deep,
                &deep,
            );
            Sim::new(topo, Box::new(BlastFactory), NullObserver)
        };
        // Small fabric: the hinted sum exceeds every cap, so the old
        // fixed bound still applies.
        assert_eq!(mk(128).arena_stats().2, 65_536);
        // Large fabric: the cap follows host count instead of clamping.
        assert_eq!(mk(4_096).arena_stats().2, 4_096 * 32);
    }

    #[test]
    fn single_flow_fct_matches_hand_calculation() {
        let p = profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(
            topo,
            Box::new(BlastFactory),
            FctObserver {
                start: Time::ZERO,
                done_at: None,
            },
        );
        // 10 packets of 1460 B = 14,600 B.
        sim.schedule_flow(flow(1, 0, 1, 14_600, Time::from_micros(100)));
        sim.run_to_completion(TimeDelta::millis(1));
        // Hand calculation: 10 packets of 1538 B at 10 Gbps serialize in
        // 1230.4 ns each. Host NIC pipeline + switch: last packet leaves NIC
        // at 100us + 10*1230.4ns, arrives switch +5us +1230.4ns (store and
        // forward), leaves switch immediately after, arrives host +5us.
        let done = sim.observer.done_at.expect("flow completed");
        let expect_ns = 100_000.0 + 10.0 * 1230.4 + 5_000.0 + 1230.4 + 5_000.0;
        let got = done.as_nanos() as f64;
        assert!(
            (got - expect_ns).abs() < 10.0,
            "FCT {got} ns vs expected {expect_ns} ns"
        );
    }

    #[test]
    fn flows_complete_across_clos() {
        let p = profile(Rate::from_gbps(40));
        let topo = Topology::clos(ClosParams::small(), &p, &p);
        let n = topo.hosts.len();
        let mut sim = Sim::new(topo, Box::new(BlastFactory), NullObserver);
        for i in 0..20u64 {
            let src = (i as usize * 7) % n;
            let dst = (src + 1 + (i as usize * 13) % (n - 1)) % n;
            sim.schedule_flow(flow(i, src, dst, 50_000 + i * 1000, Time::from_micros(i)));
        }
        sim.run_to_completion(TimeDelta::millis(1));
        assert_eq!(sim.flows_completed(), 20);
    }

    #[test]
    fn drops_reported_when_buffer_overflows() {
        // Tiny switch queues force drops with a blast sender.
        let mut p = profile(Rate::from_gbps(10));
        p.port.queues[0].0 = QueueConfig::capped(WireBytes::new(20_000));
        let host_p = profile(Rate::from_gbps(10));
        let topo = Topology::star(3, Rate::from_gbps(10), TimeDelta::micros(5), &p, &host_p);

        struct DropCount {
            drops: u64,
        }
        impl NetObserver for DropCount {
            fn on_drop(&mut self, _p: &Packet, _r: DropReason, _n: NodeId, _now: Time) {
                self.drops += 1;
            }
        }

        let mut sim = Sim::new(topo, Box::new(BlastFactory), DropCount { drops: 0 });
        // Two senders to one receiver at the same instant: the 10 Gbps
        // access link to host 2 must overflow the 20 kB queue.
        sim.schedule_flow(flow(1, 0, 2, 1_000_000, Time::ZERO));
        sim.schedule_flow(flow(2, 1, 2, 1_000_000, Time::ZERO));
        sim.run_until(Time::from_millis(50));
        assert!(sim.observer.drops > 0, "expected buffer drops");
    }

    #[test]
    fn timer_roundtrip() {
        struct TimerEp {
            fired: bool,
            flow: FlowId,
        }
        impl Endpoint for TimerEp {
            fn activate(&mut self, ctx: &mut EndpointCtx) {
                ctx.set_timer(ctx.now + TimeDelta::micros(50), timer_token(self.flow, 1));
            }
            fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
            fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
                assert_eq!(timer_kind(token), 1);
                self.fired = true;
                ctx.emit(AppEvent::FlowCompleted {
                    flow: self.flow,
                    stats: RxStats::default(),
                });
            }
            fn finished(&self) -> bool {
                self.fired
            }
        }
        struct TimerFactory;
        impl TransportFactory for TimerFactory {
            fn sender(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(TimerEp {
                    fired: false,
                    flow: flow.id,
                })
            }
            fn receiver(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(TimerEp {
                    fired: false,
                    flow: flow.id,
                })
            }
        }
        let p = profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(topo, Box::new(TimerFactory), NullObserver);
        sim.schedule_flow(flow(3, 0, 1, 100, Time::from_micros(10)));
        sim.run_until(Time::from_millis(1));
        assert_eq!(sim.flows_completed(), 2); // Both halves emitted.
        assert_eq!(sim.now(), Time::from_micros(60));
    }

    /// The cancellable-timer protocol end to end: `arm_timer` replaces a
    /// previously armed token (the old deadline never fires), `cancel_timer`
    /// suppresses delivery entirely, and once a timer fires its slot leaves
    /// the host's armed-timer table.
    #[test]
    fn cancellable_timers_cancel_and_rearm_via_sim() {
        #[derive(Default)]
        struct Seen {
            b_fired: Vec<Time>,
            c_fired: u32,
        }
        struct Ep {
            flow: FlowId,
            seen: std::sync::Arc<std::sync::Mutex<Seen>>,
            done: bool,
        }
        impl Endpoint for Ep {
            fn activate(&mut self, ctx: &mut EndpointCtx) {
                // Plain driver timer (kind 1) plus two cancellable ones:
                // B (kind 2) to be re-armed later, C (kind 3) to be
                // cancelled outright.
                ctx.set_timer(ctx.now + TimeDelta::micros(50), timer_token(self.flow, 1));
                ctx.arm_timer(ctx.now + TimeDelta::micros(60), timer_token(self.flow, 2));
                ctx.arm_timer(ctx.now + TimeDelta::micros(70), timer_token(self.flow, 3));
            }
            fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
            fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
                match timer_kind(token) {
                    1 => {
                        // Push B from 60 us out to 140 us and kill C.
                        ctx.arm_timer(ctx.now + TimeDelta::micros(90), timer_token(self.flow, 2));
                        ctx.cancel_timer(timer_token(self.flow, 3));
                    }
                    2 => {
                        self.seen.lock().expect("lock").b_fired.push(ctx.now);
                        if !self.done {
                            self.done = true;
                            ctx.emit(AppEvent::FlowCompleted {
                                flow: self.flow,
                                stats: RxStats::default(),
                            });
                        }
                    }
                    3 => self.seen.lock().expect("lock").c_fired += 1,
                    _ => unreachable!(),
                }
            }
            fn finished(&self) -> bool {
                self.done
            }
        }
        struct F(std::sync::Arc<std::sync::Mutex<Seen>>);
        impl TransportFactory for F {
            fn sender(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(Ep {
                    flow: flow.id,
                    seen: self.0.clone(),
                    done: false,
                })
            }
            fn receiver(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(Ep {
                    flow: flow.id,
                    seen: self.0.clone(),
                    done: false,
                })
            }
        }
        let p = profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Seen::default()));
        let mut sim = Sim::new(topo, Box::new(F(seen.clone())), NullObserver);
        sim.schedule_flow(flow(4, 0, 1, 100, Time::ZERO));
        sim.run_until(Time::from_millis(1));
        // Both endpoints saw B fire exactly once, at the re-armed instant
        // (50 + 90 us) rather than the original 60 us; C never fired.
        {
            let s = seen.lock().expect("lock");
            assert_eq!(
                s.b_fired.as_slice(),
                &[Time::from_micros(140), Time::from_micros(140)]
            );
            assert_eq!(s.c_fired, 0, "cancelled timer fired");
        }
        // Delivered + cancelled timers all left each host's table.
        for n in [sim.hosts[0], sim.hosts[1]] {
            if let Node::Host(h) = &sim.nodes[n] {
                assert_eq!(h.armed_timers(), 0, "armed-timer table not drained");
            }
        }
        // Each endpoint cancelled C and replaced B once: 2 endpoints x 2.
        assert_eq!(sim.timers_cancelled(), 4);
    }

    #[test]
    fn sampling_emits_queue_samples() {
        struct SampleCount {
            n: u64,
        }
        impl NetObserver for SampleCount {
            fn on_queue_sample(
                &mut self,
                _node: NodeId,
                _port: usize,
                _s: &QueueSample,
                _now: Time,
            ) {
                self.n += 1;
            }
        }
        let p = profile(Rate::from_gbps(10));
        let topo = Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        let mut sim = Sim::new(topo, Box::new(BlastFactory), SampleCount { n: 0 });
        sim.enable_sampling(TimeDelta::micros(100));
        sim.schedule_flow(flow(1, 0, 1, 1_000_000, Time::ZERO));
        sim.run_to_completion(TimeDelta::ZERO);
        // 1 MB at 10 Gbps takes ~822 us; expect ~8 ticks x 2 ports.
        assert!(sim.observer.n >= 10, "samples {}", sim.observer.n);
    }

    #[test]
    fn control_packet_sizes_obeyed() {
        let wire = CTRL_WIRE;
        assert!(
            wire < WireBytes::new(100),
            "control packets must fit a minimum frame"
        );
    }

    /// Regression test: a shaper wake that fires while the port is busy
    /// must not leave stale `pending_wake` bookkeeping behind. With the
    /// bug, a shaped queue whose arrivals are dropped (full cap) would
    /// never be served again and its packets never delivered.
    #[test]
    fn shaped_queue_drains_after_wake_lands_mid_transmission() {
        use crate::packet::CreditInfo;
        use crate::port::QueueSched;

        struct Burst {
            flow: FlowId,
            sent_data: bool,
        }
        impl Endpoint for Burst {
            fn activate(&mut self, ctx: &mut EndpointCtx) {
                // Five credits into the shaped Q0: the first drains the
                // token burst; the rest must wait for refills.
                for i in 0..5 {
                    ctx.send(Packet::new(
                        self.flow,
                        0,
                        1,
                        CTRL_WIRE,
                        TrafficClass::Credit,
                        Payload::Credit(CreditInfo { idx: i }),
                    ));
                }
                // A large data packet lands while the shaper wake is
                // pending; its serialization swallows the wake event.
                ctx.set_timer(ctx.now + TimeDelta::micros(100), timer_token(self.flow, 1));
            }
            fn on_packet(&mut self, _p: &Packet, _ctx: &mut EndpointCtx) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut EndpointCtx) {
                self.sent_data = true;
                ctx.send(Packet::new(
                    self.flow,
                    0,
                    1,
                    crate::consts::DATA_WIRE,
                    TrafficClass::Legacy,
                    Payload::CreditStop,
                ));
            }
            fn finished(&self) -> bool {
                false
            }
        }

        struct Count {
            credits: u32,
        }
        impl Endpoint for Count {
            fn activate(&mut self, _ctx: &mut EndpointCtx) {}
            fn on_packet(&mut self, p: &Packet, _ctx: &mut EndpointCtx) {
                if matches!(p.payload, Payload::Credit(_)) {
                    self.credits += 1;
                }
            }
            fn on_timer(&mut self, _t: u64, _ctx: &mut EndpointCtx) {}
            fn finished(&self) -> bool {
                false
            }
        }

        struct F;
        impl TransportFactory for F {
            fn sender(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(Burst {
                    flow: flow.id,
                    sent_data: false,
                })
            }
            fn receiver(&mut self, _flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
                Box::new(Count { credits: 0 })
            }
        }

        // Slow 10 Mbps line so the data packet serializes for 1.23 ms;
        // credit shaper at 1 Mbps with an 84 B burst.
        let sw = SwitchProfile {
            port: PortConfig {
                rate: Rate::from_mbps(10),
                queues: vec![
                    (
                        QueueConfig::capped(WireBytes::new(1_000)),
                        QueueSched::strict(0).shaped(Rate::from_mbps(1), CTRL_WIRE),
                    ),
                    (QueueConfig::plain(), QueueSched::strict(1)),
                ],
            },
            class_map: ClassMap::Split {
                credit: 0,
                new_data: 1,
                new_ctrl: 1,
                legacy: 1,
            },
            shared_buffer: None,
        };
        let topo = Topology::star(2, Rate::from_mbps(10), TimeDelta::micros(5), &sw, &sw);
        let mut sim = Sim::new(topo, Box::new(F), NullObserver);
        sim.schedule_flow(FlowSpec {
            id: 1,
            src: 0,
            dst: 1,
            size: Bytes::new(100),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        });
        sim.run_until(Time::from_millis(50));
        // All five credits must eventually reach host 1 despite the wake
        // being swallowed by the data transmission.
        if let Node::Host(h) = &sim.nodes[sim.hosts[1]] {
            // Count endpoint holds the tally; verify no backlog remains.
            assert!(!h.nic.has_backlog());
        }
        let backlog: WireBytes = (0..sim.nodes.len())
            .map(|n| match &sim.nodes[n] {
                Node::Switch(s) => s.ports.iter().map(|p| p.backlog_bytes()).sum(),
                Node::Host(h) => h.nic.backlog_bytes(),
            })
            .sum();
        assert_eq!(
            backlog,
            WireBytes::ZERO,
            "shaped queue wedged with {backlog}"
        );
    }

    #[test]
    fn cross_cut_handoff_rejects_stale_ids() {
        // Generation safety across the domain cut: a packet leaving on a
        // cut link is released from the sender domain's arena (its id dies
        // there) and re-acquired by the receiver domain's `inject_arrival`
        // under a fresh generation. Ids minted before either transition
        // must stay dead even after the slot is reused. Two full Sims
        // stand in for the two domains of a star fabric split as
        // {host 0, switch} / {host 1}.
        let p = profile(Rate::from_gbps(10));
        let mk = || Topology::star(2, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        // Star node order: node 0 is the switch, hosts follow.
        let domain_of = std::sync::Arc::new(vec![0u32, 0, 1]);
        let mut a = Sim::new(mk(), Box::new(BlastFactory), NullObserver);
        a.set_partition(PartitionCtx {
            domain_of: domain_of.clone(),
            me: 0,
        });
        let mut b = Sim::new(mk(), Box::new(BlastFactory), NullObserver);
        b.set_partition(PartitionCtx { domain_of, me: 1 });
        let spec = flow(7, 0, 1, 4_000, Time::ZERO);
        a.schedule_flow_role(spec, FlowRole::Sender);
        b.schedule_flow_role(spec, FlowRole::Receiver);

        // Sender side: a probe id acquired and released before the run
        // leaves its slot on top of the free list, so the engine's first
        // data packet reuses it under a bumped generation. The stale probe
        // must never alias the live packet, during the run or after the
        // cut branch releases it into the outbox.
        let probe_pkt = || {
            Packet::new(
                99,
                0,
                1,
                CTRL_WIRE,
                TrafficClass::Legacy,
                Payload::CreditStop,
            )
        };
        let probe_a = a.arena.acquire(probe_pkt());
        assert!(a.arena.release(probe_a).is_some());
        a.run_until(Time::from_micros(100));
        assert!(
            a.arena.get(probe_a).is_none(),
            "stale id revived in domain 0"
        );
        let records: Vec<(Time, NodeId, Packet)> = a.outbox.drain(..).collect();
        assert!(!records.is_empty(), "no packets crossed the cut");
        assert_eq!(a.arena.live(), 0, "handoff must release the sender slot");

        // Receiver side: the same probe trick on the peer arena, then the
        // real handoff path. `inject_arrival` re-acquires the released
        // slot, so the pre-handoff id must be rejected while the
        // handed-off packet is live in that slot.
        let probe_b = b.arena.acquire(probe_pkt());
        assert!(b.arena.release(probe_b).is_some());
        for (at, node, pkt) in records {
            b.inject_arrival(at, node, pkt);
        }
        assert!(b.arena.live() > 0, "injected packets must be live");
        assert!(
            b.arena.get(probe_b).is_none(),
            "stale id aliases a handed-off packet"
        );
        b.run_until(Time::from_micros(200));
        assert_eq!(b.flows_completed(), 1, "receiver half must complete");
        assert!(
            b.arena.get(probe_b).is_none(),
            "stale id revived in domain 1"
        );
    }
}
