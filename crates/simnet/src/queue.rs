//! A byte-accounted FIFO queue with ECN marking and per-color accounting.
//!
//! One [`PacketQueue`] corresponds to one egress queue (Q0/Q1/Q2 in the
//! paper). The queue implements the two switch mechanisms FlexPass relies on
//! (§4.1):
//!
//! * **ECN marking**: arriving ECN-capable packets are CE-marked when the
//!   instantaneous queue length exceeds the marking threshold (DCTCP-style
//!   step marking, the standard RED configuration for DCTCP).
//! * **Selective dropping**: the queue tracks how many queued bytes are
//!   *red* (reactive sub-flow packets); an arriving red packet is dropped
//!   when admitting it would push the red byte count past the selective-drop
//!   threshold. Green packets are only subject to the overall buffer limits.
//!
//! Buffer admission against the switch-level shared buffer happens in
//! [`crate::switch`]; this module only enforces the queue's own static cap
//! (used for the tiny credit-queue buffer).
//!
//! Storage is an **intrusive singly-linked FIFO of [`PacketId`]s**: the
//! queue holds only `head`/`tail`/`len`, and each packet's successor link
//! is threaded through its [`PacketArena`] slot. Enqueue and dequeue are
//! pointer writes into the preallocated slab — no per-packet heap node,
//! no ring-buffer doubling mid-sim. While a packet is queued the queue
//! *owns* its id (the one live copy that will be handed onward), which is
//! what makes reconstructing successor ids from slot generations sound.

use flexpass_simcore::units::WireBytes;

use crate::arena::{PacketArena, PacketId};
use crate::audit;
use crate::consts::CTRL_WIRE;
use crate::packet::Color;
use crate::trace;

/// Why a packet was dropped at enqueue time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The queue's static byte cap was exceeded (e.g. credit queue < 1 kB).
    QueueCap,
    /// The switch shared buffer / dynamic threshold rejected the packet.
    Buffer,
    /// Selective dropping: red bytes would exceed the red threshold.
    SelectiveRed,
}

/// Static configuration of one egress queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Static byte cap; `WireBytes::MAX` means "no static cap" (shared
    /// buffer governs admission instead).
    pub cap_bytes: WireBytes,
    /// ECN/RED step-marking threshold; `None` disables marking.
    pub ecn_threshold: Option<WireBytes>,
    /// Selective-drop threshold for red bytes; `None` disables selective
    /// dropping.
    pub red_threshold: Option<WireBytes>,
}

impl QueueConfig {
    /// A plain FIFO with no marking or dropping policies.
    pub fn plain() -> Self {
        QueueConfig {
            cap_bytes: WireBytes::MAX,
            ecn_threshold: None,
            red_threshold: None,
        }
    }

    /// A queue with a static byte cap (credit queues).
    pub fn capped(cap_bytes: WireBytes) -> Self {
        QueueConfig {
            cap_bytes,
            ecn_threshold: None,
            red_threshold: None,
        }
    }

    /// Adds an ECN step-marking threshold.
    pub fn with_ecn(mut self, bytes: WireBytes) -> Self {
        self.ecn_threshold = Some(bytes);
        self
    }

    /// Adds a selective-drop (red) threshold.
    pub fn with_red_threshold(mut self, bytes: WireBytes) -> Self {
        self.red_threshold = Some(bytes);
        self
    }

    /// Most packets this queue's *static* cap can hold — its contribution
    /// to arena pre-sizing — or `None` when uncapped (shared buffer or
    /// transport windows bound occupancy instead). Counted in minimum-size
    /// ([`CTRL_WIRE`]) packets, the densest admissible packing.
    pub fn capacity_hint(&self) -> Option<usize> {
        if self.cap_bytes == WireBytes::MAX {
            return None;
        }
        let per_pkt = CTRL_WIRE.get().max(1);
        // lint:allow(raw-cast): bytes / bytes-per-packet is a packet count
        Some(self.cap_bytes.get().div_ceil(per_pkt) as usize)
    }
}

/// Counters exported by each queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Packets admitted.
    pub enqueued: u64,
    /// Packets CE-marked on admission.
    pub ecn_marked: u64,
    /// Packets dropped by the static cap.
    pub dropped_cap: u64,
    /// Packets dropped by selective (red) dropping.
    pub dropped_red: u64,
    /// Bytes dropped by selective (red) dropping.
    pub dropped_red_bytes: WireBytes,
}

/// A FIFO egress queue: an intrusive list of arena-resident packets.
#[derive(Debug)]
pub struct PacketQueue {
    cfg: QueueConfig,
    head: Option<PacketId>,
    tail: Option<PacketId>,
    len: usize,
    bytes: WireBytes,
    red_bytes: WireBytes,
    counters: QueueCounters,
    audit_id: audit::ComponentId,
    trace_id: trace::QueueId,
}

/// Result of offering a packet to the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Admitted (possibly CE-marked inside).
    Admitted,
    /// Dropped for the given reason. The caller still owns the id and is
    /// responsible for releasing it.
    Dropped(DropReason),
}

impl PacketQueue {
    /// Creates an empty queue with the given configuration. The queue
    /// itself owns no packet storage — backing slots live in the shared
    /// [`PacketArena`], pre-sized from [`QueueConfig::capacity_hint`].
    pub fn new(cfg: QueueConfig) -> Self {
        PacketQueue {
            cfg,
            head: None,
            tail: None,
            len: 0,
            bytes: WireBytes::ZERO,
            red_bytes: WireBytes::ZERO,
            counters: QueueCounters::default(),
            audit_id: audit::new_component_id(),
            trace_id: trace::new_queue_id(),
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Queued bytes.
    pub fn bytes(&self) -> WireBytes {
        self.bytes
    }

    /// Queued red bytes.
    pub fn red_bytes(&self) -> WireBytes {
        self.red_bytes
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counters snapshot.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Wire size of the head packet, if any.
    pub fn head_bytes(&self, arena: &PacketArena) -> Option<WireBytes> {
        self.head
            .map(|id| arena.get(id).expect("queued id is live").wire)
    }

    /// Offers the packet behind `id` to the queue, applying the queue's
    /// own policies: static cap, selective red dropping, and ECN marking.
    ///
    /// On `Admitted` the queue takes ownership of `id` until `dequeue`
    /// hands it back; on `Dropped` the caller keeps it (and must release
    /// it). Shared-buffer admission must be checked by the caller *before*
    /// this (the switch knows the buffer state; the queue does not).
    pub fn offer(&mut self, arena: &mut PacketArena, id: PacketId) -> Enqueue {
        let (size, color, ecn_capable) = {
            let pkt = arena.get(id).expect("offered id is live");
            (pkt.wire, pkt.color, pkt.ecn_capable)
        };
        if self
            .cfg
            .cap_bytes
            .checked_sub(size)
            .is_none_or(|room| self.bytes > room)
        {
            self.counters.dropped_cap += 1;
            return Enqueue::Dropped(DropReason::QueueCap);
        }
        if color == Color::Red {
            if let Some(red_thr) = self.cfg.red_threshold {
                if self.red_bytes + size > red_thr {
                    self.counters.dropped_red += 1;
                    self.counters.dropped_red_bytes += size;
                    return Enqueue::Dropped(DropReason::SelectiveRed);
                }
            }
        }
        if let Some(ecn_thr) = self.cfg.ecn_threshold {
            if ecn_capable && self.bytes > ecn_thr {
                let pkt = arena.get_mut(id).expect("offered id is live");
                pkt.ecn_ce = true;
                self.counters.ecn_marked += 1;
                trace::ecn_mark(self.trace_id, arena.get(id).expect("offered id is live"));
            }
        }
        if color == Color::Red {
            self.red_bytes += size;
        }
        self.bytes += size;
        self.counters.enqueued += 1;
        {
            let pkt = arena.get(id).expect("offered id is live");
            audit::enqueue(self.audit_id, pkt, self.bytes);
            trace::enqueue(self.trace_id, pkt, self.bytes);
        }
        arena.clear_next(id);
        match self.tail {
            Some(t) => arena.set_next(t, id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        self.len += 1;
        Enqueue::Admitted
    }

    /// Removes and returns the head packet's id, handing ownership back to
    /// the caller (who delivers, forwards, or releases it).
    pub fn dequeue(&mut self, arena: &mut PacketArena) -> Option<PacketId> {
        let id = self.head?;
        self.head = arena.next_of(id);
        if self.head.is_none() {
            self.tail = None;
        }
        self.len -= 1;
        let (size, color) = {
            let pkt = arena.get(id).expect("queued id is live");
            (pkt.wire, pkt.color)
        };
        self.bytes -= size;
        if color == Color::Red {
            self.red_bytes -= size;
        }
        {
            let pkt = arena.get(id).expect("queued id is live");
            audit::dequeue(self.audit_id, pkt, self.bytes);
            trace::dequeue(self.trace_id, pkt, self.bytes);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::CTRL_WIRE;
    use crate::packet::{CreditInfo, DataInfo, Packet, Payload, Subflow, TrafficClass};
    use flexpass_simcore::rng::SimRng;
    use flexpass_simcore::units::Bytes;

    fn mk(wire: u64, red: bool, ecn: bool) -> Packet {
        let wire = WireBytes::new(wire);
        let p = Packet::new(
            1,
            0,
            1,
            wire,
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Reactive,
                payload: Bytes::new(1000),
                retx: false,
            }),
        );
        let p = if red { p.red() } else { p };
        if ecn {
            p.ecn()
        } else {
            p
        }
    }

    /// Offer a packet value, releasing the id again if the queue refuses
    /// it (mirrors what switch/host call sites do).
    fn offer_pkt(q: &mut PacketQueue, a: &mut PacketArena, pkt: Packet) -> Enqueue {
        let id = a.acquire(pkt);
        let r = q.offer(a, id);
        if matches!(r, Enqueue::Dropped(_)) {
            a.release(id);
        }
        r
    }

    /// Dequeue straight to a packet value, releasing the slot.
    fn dequeue_pkt(q: &mut PacketQueue, a: &mut PacketArena) -> Option<Packet> {
        let id = q.dequeue(a)?;
        a.release(id)
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut a = PacketArena::new();
        let mut q = PacketQueue::new(QueueConfig::plain());
        offer_pkt(&mut q, &mut a, mk(100, false, false));
        offer_pkt(&mut q, &mut a, mk(200, true, false));
        assert_eq!(q.bytes(), WireBytes::new(300));
        assert_eq!(q.red_bytes(), WireBytes::new(200));
        assert_eq!(q.head_bytes(&a), Some(WireBytes::new(100)));
        assert_eq!(
            dequeue_pkt(&mut q, &mut a).unwrap().wire,
            WireBytes::new(100)
        );
        assert_eq!(q.bytes(), WireBytes::new(200));
        assert_eq!(
            dequeue_pkt(&mut q, &mut a).unwrap().wire,
            WireBytes::new(200)
        );
        assert_eq!(q.bytes(), WireBytes::ZERO);
        assert_eq!(q.red_bytes(), WireBytes::ZERO);
        assert!(dequeue_pkt(&mut q, &mut a).is_none());
        assert_eq!(a.live(), 0, "queue drained back to an empty arena");
    }

    #[test]
    fn static_cap_drops() {
        let mut a = PacketArena::new();
        let mut q = PacketQueue::new(QueueConfig::capped(WireBytes::new(1_000)));
        for _ in 0..11 {
            offer_pkt(&mut q, &mut a, mk(CTRL_WIRE.get(), false, false));
        }
        // 11 * 84 = 924 fits; a 12th would exceed 1000.
        assert_eq!(q.len(), 11);
        assert_eq!(
            offer_pkt(&mut q, &mut a, mk(CTRL_WIRE.get(), false, false)),
            Enqueue::Dropped(DropReason::QueueCap)
        );
        assert_eq!(q.counters().dropped_cap, 1);
        assert_eq!(a.live(), 11, "dropped packet's slot was released");
    }

    #[test]
    fn selective_drop_hits_only_red() {
        let mut a = PacketArena::new();
        let mut q = PacketQueue::new(QueueConfig::plain().with_red_threshold(WireBytes::new(500)));
        assert_eq!(
            offer_pkt(&mut q, &mut a, mk(400, true, false)),
            Enqueue::Admitted
        );
        // Red bytes would reach 800 > 500 -> dropped.
        assert_eq!(
            offer_pkt(&mut q, &mut a, mk(400, true, false)),
            Enqueue::Dropped(DropReason::SelectiveRed)
        );
        // Green packets are unaffected.
        assert_eq!(
            offer_pkt(&mut q, &mut a, mk(400, false, false)),
            Enqueue::Admitted
        );
        assert_eq!(q.counters().dropped_red, 1);
        assert_eq!(q.counters().dropped_red_bytes, WireBytes::new(400));
        assert_eq!(q.bytes(), WireBytes::new(800));
        assert_eq!(q.red_bytes(), WireBytes::new(400));
    }

    #[test]
    fn ecn_marks_above_threshold_only_capable_packets() {
        let mut a = PacketArena::new();
        let mut q = PacketQueue::new(QueueConfig::plain().with_ecn(WireBytes::new(500)));
        offer_pkt(&mut q, &mut a, mk(600, false, true));
        // Queue was empty (0 <= 500) at arrival: no mark.
        assert_eq!(q.counters().ecn_marked, 0);
        offer_pkt(&mut q, &mut a, mk(100, false, true));
        // Queue length 600 > 500: marked.
        assert_eq!(q.counters().ecn_marked, 1);
        // Non-capable packet above threshold: not marked.
        offer_pkt(&mut q, &mut a, mk(100, false, false));
        assert_eq!(q.counters().ecn_marked, 1);
        let x = dequeue_pkt(&mut q, &mut a).unwrap();
        let y = dequeue_pkt(&mut q, &mut a).unwrap();
        let z = dequeue_pkt(&mut q, &mut a).unwrap();
        assert!(!x.ecn_ce && y.ecn_ce && !z.ecn_ce);
    }

    #[test]
    fn credit_queue_profile() {
        // The paper's Q0: < 1 kB buffer so excess credits are dropped.
        let mut a = PacketArena::new();
        let mut q = PacketQueue::new(QueueConfig::capped(WireBytes::new(1_000)));
        let mut admitted = 0;
        for _ in 0..100 {
            let pkt = Packet::new(
                9,
                0,
                1,
                CTRL_WIRE,
                TrafficClass::Credit,
                Payload::Credit(CreditInfo { idx: 0 }),
            );
            if offer_pkt(&mut q, &mut a, pkt) == Enqueue::Admitted {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 11);
    }

    #[test]
    fn capacity_hint_counts_min_size_packets() {
        assert_eq!(QueueConfig::plain().capacity_hint(), None);
        // 1000 / 84 rounds up to 12 slots.
        assert_eq!(
            QueueConfig::capped(WireBytes::new(1_000)).capacity_hint(),
            Some(12)
        );
    }

    /// A `VecDeque<Packet>`-backed oracle re-implementing the queue's
    /// admission policies verbatim (the pre-arena implementation).
    struct ModelQueue {
        cfg: QueueConfig,
        fifo: std::collections::VecDeque<Packet>,
        bytes: WireBytes,
        red_bytes: WireBytes,
    }

    enum ModelResult {
        Admitted,
        Dropped(DropReason),
    }

    impl ModelQueue {
        fn offer(&mut self, mut pkt: Packet) -> ModelResult {
            let size = pkt.wire;
            if self
                .cfg
                .cap_bytes
                .checked_sub(size)
                .is_none_or(|room| self.bytes > room)
            {
                return ModelResult::Dropped(DropReason::QueueCap);
            }
            if pkt.color == Color::Red {
                if let Some(red_thr) = self.cfg.red_threshold {
                    if self.red_bytes + size > red_thr {
                        return ModelResult::Dropped(DropReason::SelectiveRed);
                    }
                }
            }
            if let Some(ecn_thr) = self.cfg.ecn_threshold {
                if pkt.ecn_capable && self.bytes > ecn_thr {
                    pkt.ecn_ce = true;
                }
            }
            if pkt.color == Color::Red {
                self.red_bytes += size;
            }
            self.bytes += size;
            self.fifo.push_back(pkt);
            ModelResult::Admitted
        }

        fn dequeue(&mut self) -> Option<Packet> {
            let pkt = self.fifo.pop_front()?;
            self.bytes -= pkt.wire;
            if pkt.color == Color::Red {
                self.red_bytes -= pkt.wire;
            }
            Some(pkt)
        }
    }

    /// Differential check (wheel-vs-heap playbook): the arena-backed
    /// intrusive FIFO and the `VecDeque` oracle must produce identical
    /// enqueue/dequeue/drop sequences under a randomized policy workload.
    #[test]
    fn differential_arena_vs_vecdeque_model() {
        let cfg = QueueConfig::capped(WireBytes::new(4_000))
            .with_ecn(WireBytes::new(1_200))
            .with_red_threshold(WireBytes::new(1_000));
        let mut arena = PacketArena::with_capacity(8);
        let mut real = PacketQueue::new(cfg);
        let mut model = ModelQueue {
            cfg,
            fifo: std::collections::VecDeque::new(),
            bytes: WireBytes::ZERO,
            red_bytes: WireBytes::ZERO,
        };
        let mut rng = SimRng::new(0xD1FF);
        for step in 0..6000u32 {
            if rng.chance(0.6) {
                let wire = CTRL_WIRE.get() + rng.next_below(600);
                let pkt = mk(wire, rng.chance(0.4), rng.chance(0.5));
                let got = offer_pkt(&mut real, &mut arena, pkt);
                match (got, model.offer(pkt)) {
                    (Enqueue::Admitted, ModelResult::Admitted) => {}
                    (Enqueue::Dropped(r1), ModelResult::Dropped(r2)) => {
                        assert_eq!(r1, r2, "drop reasons diverged at step {step}")
                    }
                    _ => panic!("admission diverged at step {step}"),
                }
            } else {
                let got = dequeue_pkt(&mut real, &mut arena);
                let want = model.dequeue();
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        assert_eq!(g.wire, w.wire, "wire diverged at step {step}");
                        assert_eq!(g.color, w.color, "color diverged at step {step}");
                        assert_eq!(g.ecn_ce, w.ecn_ce, "CE mark diverged at step {step}");
                    }
                    _ => panic!("emptiness diverged at step {step}"),
                }
            }
            assert_eq!(real.bytes(), model.bytes, "byte ledger diverged at {step}");
            assert_eq!(real.red_bytes(), model.red_bytes);
            assert_eq!(real.len(), model.fifo.len());
            assert_eq!(arena.live(), model.fifo.len(), "arena leaks slots");
        }
    }
}
