//! A byte-accounted FIFO queue with ECN marking and per-color accounting.
//!
//! One [`PacketQueue`] corresponds to one egress queue (Q0/Q1/Q2 in the
//! paper). The queue implements the two switch mechanisms FlexPass relies on
//! (§4.1):
//!
//! * **ECN marking**: arriving ECN-capable packets are CE-marked when the
//!   instantaneous queue length exceeds the marking threshold (DCTCP-style
//!   step marking, the standard RED configuration for DCTCP).
//! * **Selective dropping**: the queue tracks how many queued bytes are
//!   *red* (reactive sub-flow packets); an arriving red packet is dropped
//!   when admitting it would push the red byte count past the selective-drop
//!   threshold. Green packets are only subject to the overall buffer limits.
//!
//! Buffer admission against the switch-level shared buffer happens in
//! [`crate::switch`]; this module only enforces the queue's own static cap
//! (used for the tiny credit-queue buffer).

use std::collections::VecDeque;

use flexpass_simcore::units::WireBytes;

use crate::audit;
use crate::packet::{Color, Packet};
use crate::trace;

/// Why a packet was dropped at enqueue time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The queue's static byte cap was exceeded (e.g. credit queue < 1 kB).
    QueueCap,
    /// The switch shared buffer / dynamic threshold rejected the packet.
    Buffer,
    /// Selective dropping: red bytes would exceed the red threshold.
    SelectiveRed,
}

/// Static configuration of one egress queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Static byte cap; `WireBytes::MAX` means "no static cap" (shared
    /// buffer governs admission instead).
    pub cap_bytes: WireBytes,
    /// ECN/RED step-marking threshold; `None` disables marking.
    pub ecn_threshold: Option<WireBytes>,
    /// Selective-drop threshold for red bytes; `None` disables selective
    /// dropping.
    pub red_threshold: Option<WireBytes>,
}

impl QueueConfig {
    /// A plain FIFO with no marking or dropping policies.
    pub fn plain() -> Self {
        QueueConfig {
            cap_bytes: WireBytes::MAX,
            ecn_threshold: None,
            red_threshold: None,
        }
    }

    /// A queue with a static byte cap (credit queues).
    pub fn capped(cap_bytes: WireBytes) -> Self {
        QueueConfig {
            cap_bytes,
            ecn_threshold: None,
            red_threshold: None,
        }
    }

    /// Adds an ECN step-marking threshold.
    pub fn with_ecn(mut self, bytes: WireBytes) -> Self {
        self.ecn_threshold = Some(bytes);
        self
    }

    /// Adds a selective-drop (red) threshold.
    pub fn with_red_threshold(mut self, bytes: WireBytes) -> Self {
        self.red_threshold = Some(bytes);
        self
    }
}

/// Counters exported by each queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Packets admitted.
    pub enqueued: u64,
    /// Packets CE-marked on admission.
    pub ecn_marked: u64,
    /// Packets dropped by the static cap.
    pub dropped_cap: u64,
    /// Packets dropped by selective (red) dropping.
    pub dropped_red: u64,
    /// Bytes dropped by selective (red) dropping.
    pub dropped_red_bytes: WireBytes,
}

/// A FIFO egress queue.
#[derive(Debug)]
pub struct PacketQueue {
    cfg: QueueConfig,
    fifo: VecDeque<Packet>,
    bytes: WireBytes,
    red_bytes: WireBytes,
    counters: QueueCounters,
    audit_id: audit::ComponentId,
    trace_id: trace::QueueId,
}

/// Result of offering a packet to the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Admitted (possibly CE-marked inside).
    Admitted,
    /// Dropped for the given reason.
    Dropped(DropReason),
}

impl PacketQueue {
    /// Creates an empty queue with the given configuration.
    pub fn new(cfg: QueueConfig) -> Self {
        PacketQueue {
            cfg,
            fifo: VecDeque::new(),
            bytes: WireBytes::ZERO,
            red_bytes: WireBytes::ZERO,
            counters: QueueCounters::default(),
            audit_id: audit::new_component_id(),
            trace_id: trace::new_queue_id(),
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Queued bytes.
    pub fn bytes(&self) -> WireBytes {
        self.bytes
    }

    /// Queued red bytes.
    pub fn red_bytes(&self) -> WireBytes {
        self.red_bytes
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Counters snapshot.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Wire size of the head packet, if any.
    pub fn head_bytes(&self) -> Option<WireBytes> {
        self.fifo.front().map(|p| p.wire)
    }

    /// Offers `pkt` to the queue, applying the queue's own policies:
    /// static cap, selective red dropping, and ECN marking.
    ///
    /// Shared-buffer admission must be checked by the caller *before* this
    /// (the switch knows the buffer state; the queue does not).
    pub fn offer(&mut self, mut pkt: Packet) -> Enqueue {
        let size = pkt.wire;
        if self
            .cfg
            .cap_bytes
            .checked_sub(size)
            .is_none_or(|room| self.bytes > room)
        {
            self.counters.dropped_cap += 1;
            return Enqueue::Dropped(DropReason::QueueCap);
        }
        if pkt.color == Color::Red {
            if let Some(red_thr) = self.cfg.red_threshold {
                if self.red_bytes + size > red_thr {
                    self.counters.dropped_red += 1;
                    self.counters.dropped_red_bytes += size;
                    return Enqueue::Dropped(DropReason::SelectiveRed);
                }
            }
        }
        if let Some(ecn_thr) = self.cfg.ecn_threshold {
            if pkt.ecn_capable && self.bytes > ecn_thr {
                pkt.ecn_ce = true;
                self.counters.ecn_marked += 1;
                trace::ecn_mark(self.trace_id, &pkt);
            }
        }
        if pkt.color == Color::Red {
            self.red_bytes += size;
        }
        self.bytes += size;
        self.counters.enqueued += 1;
        audit::enqueue(self.audit_id, &pkt, self.bytes);
        trace::enqueue(self.trace_id, &pkt, self.bytes);
        self.fifo.push_back(pkt);
        Enqueue::Admitted
    }

    /// Removes and returns the head packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.fifo.pop_front()?;
        let size = pkt.wire;
        self.bytes -= size;
        if pkt.color == Color::Red {
            self.red_bytes -= size;
        }
        audit::dequeue(self.audit_id, &pkt, self.bytes);
        trace::dequeue(self.trace_id, &pkt, self.bytes);
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::CTRL_WIRE;
    use crate::packet::{CreditInfo, DataInfo, Payload, Subflow, TrafficClass};
    use flexpass_simcore::units::Bytes;

    fn mk(wire: u64, red: bool, ecn: bool) -> Packet {
        let wire = WireBytes::new(wire);
        let p = Packet::new(
            1,
            0,
            1,
            wire,
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Reactive,
                payload: Bytes::new(1000),
                retx: false,
            }),
        );
        let p = if red { p.red() } else { p };
        if ecn {
            p.ecn()
        } else {
            p
        }
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut q = PacketQueue::new(QueueConfig::plain());
        q.offer(mk(100, false, false));
        q.offer(mk(200, true, false));
        assert_eq!(q.bytes(), WireBytes::new(300));
        assert_eq!(q.red_bytes(), WireBytes::new(200));
        assert_eq!(q.head_bytes(), Some(WireBytes::new(100)));
        assert_eq!(q.dequeue().unwrap().wire, WireBytes::new(100));
        assert_eq!(q.bytes(), WireBytes::new(200));
        assert_eq!(q.dequeue().unwrap().wire, WireBytes::new(200));
        assert_eq!(q.bytes(), WireBytes::ZERO);
        assert_eq!(q.red_bytes(), WireBytes::ZERO);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn static_cap_drops() {
        let mut q = PacketQueue::new(QueueConfig::capped(WireBytes::new(1_000)));
        for _ in 0..11 {
            q.offer(mk(CTRL_WIRE.get(), false, false));
        }
        // 11 * 84 = 924 fits; a 12th would exceed 1000.
        assert_eq!(q.len(), 11);
        assert_eq!(
            q.offer(mk(CTRL_WIRE.get(), false, false)),
            Enqueue::Dropped(DropReason::QueueCap)
        );
        assert_eq!(q.counters().dropped_cap, 1);
    }

    #[test]
    fn selective_drop_hits_only_red() {
        let mut q = PacketQueue::new(QueueConfig::plain().with_red_threshold(WireBytes::new(500)));
        assert_eq!(q.offer(mk(400, true, false)), Enqueue::Admitted);
        // Red bytes would reach 800 > 500 -> dropped.
        assert_eq!(
            q.offer(mk(400, true, false)),
            Enqueue::Dropped(DropReason::SelectiveRed)
        );
        // Green packets are unaffected.
        assert_eq!(q.offer(mk(400, false, false)), Enqueue::Admitted);
        assert_eq!(q.counters().dropped_red, 1);
        assert_eq!(q.counters().dropped_red_bytes, WireBytes::new(400));
        assert_eq!(q.bytes(), WireBytes::new(800));
        assert_eq!(q.red_bytes(), WireBytes::new(400));
    }

    #[test]
    fn ecn_marks_above_threshold_only_capable_packets() {
        let mut q = PacketQueue::new(QueueConfig::plain().with_ecn(WireBytes::new(500)));
        q.offer(mk(600, false, true));
        // Queue was empty (0 <= 500) at arrival: no mark.
        assert_eq!(q.counters().ecn_marked, 0);
        q.offer(mk(100, false, true));
        // Queue length 600 > 500: marked.
        assert_eq!(q.counters().ecn_marked, 1);
        // Non-capable packet above threshold: not marked.
        q.offer(mk(100, false, false));
        assert_eq!(q.counters().ecn_marked, 1);
        let a = q.dequeue().unwrap();
        let b = q.dequeue().unwrap();
        let c = q.dequeue().unwrap();
        assert!(!a.ecn_ce && b.ecn_ce && !c.ecn_ce);
    }

    #[test]
    fn credit_queue_profile() {
        // The paper's Q0: < 1 kB buffer so excess credits are dropped.
        let mut q = PacketQueue::new(QueueConfig::capped(WireBytes::new(1_000)));
        let mut admitted = 0;
        for _ in 0..100 {
            if q.offer(Packet::new(
                9,
                0,
                1,
                CTRL_WIRE,
                TrafficClass::Credit,
                Payload::Credit(CreditInfo { idx: 0 }),
            )) == Enqueue::Admitted
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 11);
    }
}
