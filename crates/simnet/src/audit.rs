//! Audit hook shim.
//!
//! With the `audit` feature (the default) every function forwards to
//! [`flexpass_simaudit`], which checks queue byte conservation, shared-buffer
//! and credit-shaper bounds, and end-to-end flow byte conservation. Without
//! the feature the whole module compiles to no-ops and zero-sized state, so
//! instrumented call sites need no `cfg` of their own.
//!
//! The typical test-side protocol:
//!
//! ```
//! flexpass_simnet::audit::install();
//! // ... build a Sim and run it ...
//! let report = flexpass_simnet::audit::finish();
//! assert!(report.is_clean(), "{report}");
//! ```

use flexpass_simcore::units::WireBytes;

use crate::packet::{Packet, Payload};

#[cfg(feature = "audit")]
pub use flexpass_simaudit::{
    absorb_partial, finish, install, is_active, new_component_id, take_partial, AuditCounters,
    AuditReport, ComponentId, Invariant, PartialAudit, PktInfo, Violation,
};

#[cfg(feature = "audit")]
fn info(pkt: &Packet) -> PktInfo {
    let seq = match pkt.payload {
        Payload::Data(d) => d.flow_seq as u64,
        _ => 0,
    };
    PktInfo {
        flow: pkt.flow,
        seq,
        data: pkt.is_data(),
        payload_bytes: pkt.payload_bytes().get(),
        wire_bytes: pkt.wire.get(),
    }
}

/// Queue `q` admitted `pkt`; the queue now claims `bytes_after` queued bytes.
pub fn enqueue(q: ComponentId, pkt: &Packet, bytes_after: WireBytes) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_enqueue(q, info(pkt), bytes_after.get());
    #[cfg(not(feature = "audit"))]
    let _ = (q, pkt, bytes_after);
}

/// Queue `q` released `pkt`; the queue now claims `bytes_after` queued bytes.
pub fn dequeue(q: ComponentId, pkt: &Packet, bytes_after: WireBytes) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_dequeue(q, info(pkt), bytes_after.get());
    #[cfg(not(feature = "audit"))]
    let _ = (q, pkt, bytes_after);
}

/// Switch `sw` has `used` of `pool` shared-buffer bytes admitted.
pub fn shared_buffer(sw: ComponentId, used: WireBytes, pool: WireBytes) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_shared_buffer(sw, used.get(), pool.get());
    #[cfg(not(feature = "audit"))]
    let _ = (sw, used, pool);
}

/// Token bucket `shaper` holds `tokens` of at most `burst` bit-nanoseconds.
pub fn shaper_tokens(shaper: ComponentId, tokens: u128, burst: u128) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_shaper_tokens(shaper, tokens, burst);
    #[cfg(not(feature = "audit"))]
    let _ = (shaper, tokens, burst);
}

/// An endpoint handed `pkt` to its NIC.
pub fn flow_tx(pkt: &Packet) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_flow_tx(info(pkt));
    #[cfg(not(feature = "audit"))]
    let _ = pkt;
}

/// `pkt` arrived at a host.
pub fn flow_rx(pkt: &Packet) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_flow_rx(info(pkt));
    #[cfg(not(feature = "audit"))]
    let _ = pkt;
}

/// `pkt` was dropped (queue cap, shared buffer, selective red, or injected
/// loss).
pub fn flow_drop(pkt: &Packet) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_flow_drop(info(pkt));
    #[cfg(not(feature = "audit"))]
    let _ = pkt;
}

/// Component `c` reports `cap` total scratch-buffer capacity after a flush.
/// Growth is warm-up; a shrink (buffer replaced, not reused) is a
/// violation.
pub fn scratch_capacity(c: ComponentId, cap: u64) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_scratch_capacity(c, cap);
    #[cfg(not(feature = "audit"))]
    let _ = (c, cap);
}

/// `pkt` started propagating on a link.
pub fn wire_depart(pkt: &Packet) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_wire_depart(info(pkt));
    #[cfg(not(feature = "audit"))]
    let _ = pkt;
}

/// `pkt` finished propagating and reached a node.
pub fn wire_arrive(pkt: &Packet) {
    #[cfg(feature = "audit")]
    flexpass_simaudit::on_wire_arrive(info(pkt));
    #[cfg(not(feature = "audit"))]
    let _ = pkt;
}

// ---------------------------------------------------------------------------
// No-op stand-ins when auditing is compiled out, so components can keep
// zero-cost audit ids and test harnesses compile either way.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "audit"))]
mod stub {
    use std::fmt;

    /// Zero-sized stand-in for an audit component id.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct ComponentId;

    /// No-op: auditing is compiled out.
    pub fn new_component_id() -> ComponentId {
        ComponentId
    }

    /// No-op: auditing is compiled out.
    pub fn install() {}

    /// Always false: auditing is compiled out.
    pub fn is_active() -> bool {
        false
    }

    /// Trivially clean stand-in report.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AuditReport;

    impl AuditReport {
        /// Always true: nothing was audited.
        pub fn is_clean(&self) -> bool {
            true
        }
    }

    impl fmt::Display for AuditReport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("audit: disabled (built without the `audit` feature)")
        }
    }

    /// Trivially clean stand-in report.
    pub fn finish() -> AuditReport {
        AuditReport
    }

    /// Zero-sized stand-in for a domain thread's detached audit state.
    pub struct PartialAudit;

    /// Always `None`: auditing is compiled out.
    pub fn take_partial() -> Option<PartialAudit> {
        None
    }

    /// No-op: auditing is compiled out.
    pub fn absorb_partial(_p: PartialAudit) {}
}

#[cfg(not(feature = "audit"))]
pub use stub::{
    absorb_partial, finish, install, is_active, new_component_id, take_partial, AuditReport,
    ComponentId, PartialAudit,
};
