//! Trace hook shim.
//!
//! With the `trace` feature (the default) every function forwards to
//! [`flexpass_simtrace`], which records typed packet-lifecycle events into a
//! thread-local bounded ring buffer — but only while a tracer is installed;
//! otherwise each hook is a thread-local load and a branch. Without the
//! feature the whole module compiles to no-ops and zero-sized state, so
//! instrumented call sites need no `cfg` of their own.
//!
//! Tracing is strictly observation-only: no hook returns a value and no
//! simulation code branches on tracer state, so traced and untraced runs
//! execute bit-identically (see DESIGN.md "Packet-lifecycle tracing").
//!
//! The typical protocol, mirroring [`crate::audit`]:
//!
//! ```
//! flexpass_simnet::trace::install(Default::default());
//! // ... build a Sim and run it ...
//! let log = flexpass_simnet::trace::finish();
//! println!("{log}");
//! ```

use flexpass_simcore::time::Time;
use flexpass_simcore::units::WireBytes;

use crate::packet::Packet;
#[cfg(feature = "trace")]
use crate::packet::Payload;
use crate::queue::DropReason;
use crate::sim::NodeId;

#[cfg(feature = "trace")]
pub use flexpass_simtrace::{
    finish, install, install_with_capacity, is_active, new_queue_id, DropCause, EventKind, QueueId,
    TraceEvent, TraceFilter, TraceLog,
};

#[cfg(not(feature = "trace"))]
pub use stub::{finish, install, is_active, new_queue_id, QueueId, TraceFilter, TraceLog};

/// Per-flow data sequence of `pkt`, or `-1` for control packets.
#[cfg(feature = "trace")]
fn seq_of(pkt: &Packet) -> i64 {
    match pkt.payload {
        Payload::Data(d) => i64::from(d.flow_seq),
        _ => -1,
    }
}

/// Advances the tracer clock to the dispatch time `now`.
pub fn now(t: Time) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_event_time(t.as_nanos());
    #[cfg(not(feature = "trace"))]
    let _ = t;
}

/// Queue `q` admitted `pkt`; the queue now holds `bytes_after`.
pub fn enqueue(q: QueueId, pkt: &Packet, bytes_after: WireBytes) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_enqueue(q, pkt.flow, seq_of(pkt), bytes_after.get());
    #[cfg(not(feature = "trace"))]
    let _ = (q, pkt, bytes_after);
}

/// Queue `q` released `pkt`; the queue now holds `bytes_after`.
pub fn dequeue(q: QueueId, pkt: &Packet, bytes_after: WireBytes) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_dequeue(q, pkt.flow, seq_of(pkt), bytes_after.get());
    #[cfg(not(feature = "trace"))]
    let _ = (q, pkt, bytes_after);
}

/// Queue `q` ECN-marked `pkt` on admission.
pub fn ecn_mark(q: QueueId, pkt: &Packet) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_ecn_mark(q, pkt.flow, seq_of(pkt));
    #[cfg(not(feature = "trace"))]
    let _ = (q, pkt);
}

/// `pkt` was dropped at `node` for `reason` (congestion or buffer).
pub fn dropped(node: NodeId, pkt: &Packet, reason: DropReason) {
    #[cfg(feature = "trace")]
    {
        let cause = match reason {
            DropReason::QueueCap => DropCause::QueueCap,
            DropReason::Buffer => DropCause::Buffer,
            DropReason::SelectiveRed => DropCause::SelectiveRed,
        };
        flexpass_simtrace::on_drop(node as u64, pkt.flow, seq_of(pkt), cause);
    }
    #[cfg(not(feature = "trace"))]
    let _ = (node, pkt, reason);
}

/// `pkt` was destroyed by injected (non-congestion) loss at `node`.
pub fn injected_loss(node: NodeId, pkt: &Packet) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_drop(node as u64, pkt.flow, seq_of(pkt), DropCause::InjectedLoss);
    #[cfg(not(feature = "trace"))]
    let _ = (node, pkt);
}

/// A receiver sent credit `idx` for `flow`.
pub fn credit_sent(flow: u64, idx: u64) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_credit_sent(flow, idx);
    #[cfg(not(feature = "trace"))]
    let _ = (flow, idx);
}

/// A credit reached `flow`'s sender with no data left to spend it on.
pub fn credit_wasted(flow: u64) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_credit_wasted(flow);
    #[cfg(not(feature = "trace"))]
    let _ = flow;
}

/// `flow`'s sender retransmitted data sequence `seq`.
pub fn retransmit(flow: u64, seq: u32) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_retransmit(flow, i64::from(seq));
    #[cfg(not(feature = "trace"))]
    let _ = (flow, seq);
}

/// `flow`'s retransmission timer fired at backoff level `backoff`.
pub fn rto(flow: u64, backoff: u32) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_rto(flow, backoff);
    #[cfg(not(feature = "trace"))]
    let _ = (flow, backoff);
}

/// An armed endpoint timer identified by `token` was cancelled.
pub fn timer_cancel(token: u64) {
    #[cfg(feature = "trace")]
    flexpass_simtrace::on_timer_cancel(token >> 16, crate::sim::timer_kind(token));
    #[cfg(not(feature = "trace"))]
    let _ = token;
}

// ---------------------------------------------------------------------------
// No-op stand-ins when tracing is compiled out, so components can keep
// zero-sized trace ids and harnesses compile either way.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "trace"))]
mod stub {
    use std::fmt;

    /// Zero-sized stand-in for a trace queue id.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct QueueId;

    /// Zero-sized stand-in filter.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct TraceFilter;

    /// No-op: tracing is compiled out.
    pub fn new_queue_id() -> QueueId {
        QueueId
    }

    /// No-op: tracing is compiled out.
    pub fn install(_filter: TraceFilter) {}

    /// Always false: tracing is compiled out.
    pub fn is_active() -> bool {
        false
    }

    /// Empty stand-in log.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct TraceLog;

    impl fmt::Display for TraceLog {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("trace: disabled (built without the `trace` feature)")
        }
    }

    /// Empty stand-in log.
    pub fn finish() -> TraceLog {
        TraceLog
    }
}
