//! Fabric partitioning for the parallel simulation engine.
//!
//! [`partition`] cuts a wired [`Topology`] into `n` per-thread domains at
//! rack granularity: racks are chunked contiguously (so a Clos pod never
//! straddles a cut unless the domain count forces it), every host follows
//! its rack, and switches join the domain most of their already-assigned
//! neighbors live in (ToRs follow their hosts, aggs follow their ToRs,
//! cores break ties towards the lowest domain). Each domain receives a
//! full-length node table in which foreign slots hold inert placeholder
//! hosts — global [`crate::sim::NodeId`]s, route tables, and peer indices stay
//! valid without rewriting, and a packet that reaches a placeholder
//! trips the misrouting debug assertion immediately.
//!
//! The cut's *lookahead* — the minimum propagation delay over all
//! cut-crossing links — is what makes conservative synchronization sound:
//! an event at time `t` in one domain can influence another no earlier
//! than `t + lookahead`, so all domains may safely process events in
//! `[t_min, t_min + lookahead)` in parallel (see `parsim.rs`).

use std::sync::Arc;

use flexpass_simcore::time::TimeDelta;

use crate::host::Host;
use crate::port::{Port, PortConfig};
use crate::sim::Node;
use crate::switch::{ClassMap, SwitchProfile};
use crate::topology::Topology;

/// A fabric cut into per-thread domains.
pub struct Partition {
    /// One full-length topology per domain; foreign node slots hold inert
    /// placeholder hosts (`host_id == usize::MAX`).
    pub parts: Vec<Topology>,
    /// Owning domain of every global node id.
    pub domain_of: Arc<Vec<u32>>,
    /// Owning domain of every host index.
    pub host_domain: Vec<u32>,
    /// Minimum propagation delay over cut-crossing links.
    pub lookahead: TimeDelta,
}

impl Partition {
    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.parts.len()
    }
}

/// Egress ports of a node (hosts expose their NIC as a single port).
fn ports_of(node: &Node) -> &[Port] {
    match node {
        Node::Switch(s) => &s.ports,
        Node::Host(h) => std::slice::from_ref(&h.nic),
    }
}

/// Cuts `topo` into at most `n` domains. Returns the topology unchanged
/// (`Err`) when a useful cut does not exist: `n < 2`, fewer than two
/// racks, or a degenerate fabric with a zero-latency cut link (conservative
/// sync needs strictly positive lookahead).
pub fn partition(topo: Topology, n: usize) -> Result<Partition, Topology> {
    if n < 2 || topo.hosts.len() < 2 {
        return Err(topo);
    }

    // Racks present, ascending. rack_of values are dense small indices
    // (ToR index in a Clos), so a direct-mapped table suffices.
    let mut racks: Vec<usize> = topo.rack_of.clone();
    racks.sort_unstable();
    racks.dedup();
    if racks.len() < 2 {
        return Err(topo);
    }

    // Contiguous rack chunks of near-equal size; k = number of nonempty
    // chunks (≤ n when racks < n).
    let per_chunk = racks.len().div_ceil(n);
    let max_rack = *racks.last().expect("racks nonempty");
    let mut rack_dom: Vec<u32> = vec![0; max_rack + 1];
    let mut k = 0u32;
    for chunk in racks.chunks(per_chunk) {
        for &r in chunk {
            if let Some(slot) = rack_dom.get_mut(r) {
                *slot = k;
            }
        }
        k += 1;
    }
    if k < 2 {
        return Err(topo);
    }
    let k = k as usize;

    let host_domain: Vec<u32> = topo
        .rack_of
        .iter()
        .map(|&r| rack_dom.get(r).copied().unwrap_or(0))
        .collect();

    // Node → domain. Hosts follow their rack; switches by iterated
    // majority vote over already-assigned neighbors (deterministic:
    // passes sweep nodes in id order, ties break to the lowest domain).
    let n_nodes = topo.nodes.len();
    let mut domain_of: Vec<Option<u32>> = vec![None; n_nodes];
    for (h, &node_id) in topo.hosts.iter().enumerate() {
        if let (Some(slot), Some(&d)) = (domain_of.get_mut(node_id), host_domain.get(h)) {
            *slot = Some(d);
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n_nodes {
            if domain_of.get(i).copied().flatten().is_some() {
                continue;
            }
            let node = topo.nodes.get(i).expect("node index in range");
            let mut votes: Vec<u32> = vec![0; k];
            for p in ports_of(node) {
                if let Some(Some(d)) = domain_of.get(p.peer).copied() {
                    if let Some(v) = votes.get_mut(d as usize) {
                        *v += 1;
                    }
                }
            }
            let best = votes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(d, &v)| (d, v));
            if let Some((d, v)) = best {
                if v > 0 {
                    if let Some(slot) = domain_of.get_mut(i) {
                        *slot = Some(u32::try_from(d).expect("domain count fits u32"));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let domain_of: Vec<u32> = domain_of.into_iter().map(|d| d.unwrap_or(0)).collect();

    // Lookahead: minimum propagation over cut links. A duplex link is
    // examined from both sides; min is symmetric so that is harmless.
    let mut lookahead: Option<TimeDelta> = None;
    for (i, node) in topo.nodes.iter().enumerate() {
        let di = domain_of.get(i).copied().unwrap_or(0);
        for p in ports_of(node) {
            let dp = domain_of.get(p.peer).copied().unwrap_or(di);
            if dp != di {
                lookahead = Some(match lookahead {
                    Some(l) => l.min(p.prop),
                    None => p.prop,
                });
            }
        }
    }
    let lookahead = match lookahead {
        // No cut link at all: the domains are disconnected from each
        // other, so any positive lookahead is sound.
        None => topo.base_rtt,
        Some(l) if l > TimeDelta::ZERO => l,
        // A zero-latency cut would force zero-width windows.
        Some(_) => return Err(topo),
    };

    // Split the single node table into per-domain full-length tables.
    // Foreign slots get inert placeholder hosts: the sentinel host id
    // makes the misrouting debug assertion fire if a packet ever lands
    // on one, and `Node::Host` keeps them out of queue sampling (which
    // only walks switches).
    let Topology {
        nodes,
        hosts,
        rack_of,
        host_rate,
        base_rtt,
    } = topo;
    let placeholder_profile = SwitchProfile {
        port: PortConfig::single_fifo(host_rate),
        class_map: ClassMap::Single,
        shared_buffer: None,
    };
    let mut tables: Vec<Vec<Node>> = (0..k).map(|_| Vec::with_capacity(n_nodes)).collect();
    for (i, node) in nodes.into_iter().enumerate() {
        let d = domain_of.get(i).copied().unwrap_or(0) as usize;
        let mut node = Some(node);
        for (j, table) in tables.iter_mut().enumerate() {
            if j == d {
                table.push(
                    node.take()
                        .expect("each node moves into exactly one domain"),
                );
            } else {
                table.push(Node::Host(Host::new(usize::MAX, &placeholder_profile)));
            }
        }
    }
    let parts: Vec<Topology> = tables
        .into_iter()
        .map(|nodes| Topology {
            nodes,
            hosts: hosts.clone(),
            rack_of: rack_of.clone(),
            host_rate,
            base_rtt,
        })
        .collect();

    Ok(Partition {
        parts,
        domain_of: Arc::new(domain_of),
        host_domain,
        lookahead,
    })
}

/// True when `node` is a foreign-slot placeholder rather than a real
/// element of this domain.
pub fn is_placeholder(node: &Node) -> bool {
    matches!(node, Node::Host(h) if h.host_id == usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::QueueSched;
    use crate::queue::QueueConfig;
    use crate::topology::ClosParams;
    use flexpass_simcore::time::Rate;

    fn profile() -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate: Rate::from_gbps(40),
                queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
            },
            class_map: ClassMap::Single,
            shared_buffer: None,
        }
    }

    fn two_pod_64() -> ClosParams {
        ClosParams {
            n_core: 2,
            n_agg: 4,
            n_tor: 8,
            hosts_per_tor: 8,
            aggs_per_pod: 2,
            ..ClosParams::small()
        }
    }

    #[test]
    fn star_falls_back_to_serial() {
        let p = profile();
        let topo = Topology::star(4, Rate::from_gbps(10), TimeDelta::micros(5), &p, &p);
        // One rack: no cut exists.
        assert!(partition(topo, 2).is_err());
    }

    #[test]
    fn n1_falls_back_to_serial() {
        let p = profile();
        let topo = Topology::clos(ClosParams::small(), &p, &p);
        assert!(partition(topo, 1).is_err());
    }

    #[test]
    fn clos_small_splits_hosts_evenly() {
        let p = profile();
        let topo = Topology::clos(ClosParams::small(), &p, &p);
        let n_hosts = topo.hosts.len();
        let part = partition(topo, 2).ok().expect("clos partitions");
        assert_eq!(part.n_domains(), 2);
        let d0 = part.host_domain.iter().filter(|&&d| d == 0).count();
        assert_eq!(d0, n_hosts / 2, "hosts split evenly");
        // Lookahead is the fabric propagation delay of the cut links.
        assert_eq!(part.lookahead, ClosParams::small().fabric_prop);
    }

    #[test]
    fn every_node_owned_exactly_once() {
        let p = profile();
        let topo = Topology::clos(two_pod_64(), &p, &p);
        let n_nodes = topo.nodes.len();
        let part = partition(topo, 4).ok().expect("two-pod clos partitions");
        let mut owned = vec![0usize; n_nodes];
        for part_topo in &part.parts {
            assert_eq!(part_topo.nodes.len(), n_nodes, "full-length tables");
            for (i, node) in part_topo.nodes.iter().enumerate() {
                if !is_placeholder(node) {
                    owned[i] += 1;
                }
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "each node owned once");
        // The ownership map agrees with the tables.
        for (i, &d) in part.domain_of.iter().enumerate() {
            let node = &part.parts[d as usize].nodes[i];
            assert!(!is_placeholder(node), "owner table holds the real node");
        }
    }

    #[test]
    fn two_pods_two_domains_cuts_at_core() {
        let p = profile();
        let params = two_pod_64();
        let topo = Topology::clos(params, &p, &p);
        let part = partition(topo, 2).ok().expect("two-pod clos partitions");
        assert_eq!(part.n_domains(), 2);
        // 64 hosts, one pod per domain.
        assert_eq!(part.host_domain.len(), 64);
        let d0 = part.host_domain.iter().filter(|&&d| d == 0).count();
        assert_eq!(d0, 32);
        assert_eq!(part.lookahead, params.fabric_prop);
        assert!(part.lookahead > TimeDelta::ZERO);
    }
}
