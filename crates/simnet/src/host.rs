//! End hosts.
//!
//! A host owns one NIC egress [`Port`] — configured exactly like an edge
//! switch port (§5, footnote 6: "NIC is essentially a special type of edge
//! switch") — and a table of live transport [`Endpoint`]s keyed by flow.

use std::collections::BTreeMap;

use flexpass_simcore::time::Time;
use flexpass_simcore::units::Bytes;
use flexpass_simcore::TimerHandle;

use crate::endpoint::{AppEvent, Endpoint, EndpointCtx, TimerCmd};
use crate::packet::{FlowId, HostId, Packet};
use crate::port::Port;
use crate::queue::DropReason;
use crate::switch::{ClassMap, SwitchProfile};

/// Per-host counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// Packets that arrived for a flow this host no longer (or never) knew.
    pub stray_rx: u64,
    /// Packets dropped at the NIC egress, by any reason.
    pub nic_drops: u64,
    /// Data bytes received by endpoints on this host.
    pub rx_data_bytes: Bytes,
}

/// An end host: NIC port + transport endpoints.
pub struct Host {
    /// This host's index in the topology host list.
    pub host_id: HostId,
    /// NIC egress port towards the ToR (or single switch).
    pub nic: Port,
    class_map: ClassMap,
    // Ordered map: any iteration over live flows must be deterministic
    // (hash-map order would vary run to run and break replayability).
    flows: BTreeMap<FlowId, Box<dyn Endpoint>>,
    /// Calendar handle of the armed cancellable timer per token. Entries
    /// are removed when the timer is cancelled or its event is delivered.
    pub(crate) armed_timers: BTreeMap<u64, TimerHandle>,
    counters: HostCounters,
}

impl Host {
    /// Creates a host whose NIC is configured from `profile` (queue set and
    /// class map identical to edge switches; shared-buffer admission is not
    /// applied at hosts).
    pub fn new(host_id: HostId, profile: &SwitchProfile) -> Self {
        Host {
            host_id,
            nic: Port::new(&profile.port),
            class_map: profile.class_map,
            flows: BTreeMap::new(),
            armed_timers: BTreeMap::new(),
            counters: HostCounters::default(),
        }
    }

    /// Counters snapshot.
    pub fn counters(&self) -> HostCounters {
        self.counters
    }

    /// Number of live endpoints.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of currently armed cancellable timers (table entries).
    pub fn armed_timers(&self) -> usize {
        self.armed_timers.len()
    }

    /// Registers an endpoint for `flow` and runs its `activate` callback.
    pub fn register(&mut self, flow: FlowId, mut ep: Box<dyn Endpoint>, ctx: &mut EndpointCtx) {
        ep.activate(ctx);
        if !ep.finished() {
            self.flows.insert(flow, ep);
        }
    }

    /// Delivers an arriving packet to the owning endpoint. Returns `false`
    /// if no endpoint claimed it (stray late packet — dropped).
    pub fn deliver(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) -> bool {
        if pkt.is_data() {
            self.counters.rx_data_bytes += pkt.payload_bytes();
        }
        match self.flows.get_mut(&pkt.flow) {
            Some(ep) => {
                ep.on_packet(pkt, ctx);
                if ep.finished() {
                    self.flows.remove(&pkt.flow);
                }
                true
            }
            None => {
                self.counters.stray_rx += 1;
                false
            }
        }
    }

    /// Fires a timer for `flow`; stale timers for departed flows are no-ops.
    pub fn fire_timer(&mut self, flow: FlowId, token: u64, ctx: &mut EndpointCtx) {
        if let Some(ep) = self.flows.get_mut(&flow) {
            ep.on_timer(token, ctx);
            if ep.finished() {
                self.flows.remove(&flow);
            }
        }
    }

    /// Offers `pkt` to the NIC egress queue chosen by the host's class map.
    /// Returns the queue index on success.
    pub fn nic_enqueue(&mut self, pkt: Packet) -> Result<usize, (DropReason, Packet)> {
        let qidx = self.class_map.queue_for(&pkt);
        match self.nic.enqueue(qidx, pkt) {
            Ok(()) => Ok(qidx),
            Err(r) => {
                self.counters.nic_drops += 1;
                Err((r, pkt))
            }
        }
    }
}

/// Scratch buffers a host callback writes into; owned by the simulator and
/// reused across events to avoid per-packet allocation.
#[derive(Default)]
pub struct Scratch {
    /// Packets to transmit.
    pub tx: Vec<Packet>,
    /// Timer requests, in issue order.
    pub timers: Vec<TimerCmd>,
    /// Application events.
    pub app: Vec<AppEvent>,
}

impl Scratch {
    /// Empties all buffers.
    pub fn clear(&mut self) {
        self.tx.clear();
        self.timers.clear();
        self.app.clear();
    }

    /// Builds an [`EndpointCtx`] over these buffers.
    pub fn ctx(&mut self, now: Time) -> EndpointCtx<'_> {
        EndpointCtx::new(now, &mut self.tx, &mut self.timers, &mut self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::CTRL_WIRE;
    use crate::packet::{Payload, TrafficClass};
    use crate::port::{PortConfig, QueueSched};
    use crate::queue::QueueConfig;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::WireBytes;

    fn profile() -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate: Rate::from_gbps(10),
                queues: vec![
                    (
                        QueueConfig::capped(WireBytes::new(1_000)),
                        QueueSched::strict(0),
                    ),
                    (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
                    (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
                ],
            },
            class_map: ClassMap::Split {
                credit: 0,
                new_data: 1,
                new_ctrl: 1,
                legacy: 2,
            },
            shared_buffer: None,
        }
    }

    struct CountEp {
        got: u32,
        done_after: u32,
    }

    impl Endpoint for CountEp {
        fn activate(&mut self, _ctx: &mut EndpointCtx) {}
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {
            self.got += 1;
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
        fn finished(&self) -> bool {
            self.got >= self.done_after
        }
    }

    fn ctrl_pkt(flow: FlowId) -> Packet {
        Packet::new(
            flow,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::CreditStop,
        )
    }

    #[test]
    fn delivery_and_cleanup() {
        let mut h = Host::new(0, &profile());
        let mut scratch = Scratch::default();
        h.register(
            7,
            Box::new(CountEp {
                got: 0,
                done_after: 2,
            }),
            &mut scratch.ctx(Time::ZERO),
        );
        assert_eq!(h.live_flows(), 1);
        assert!(h.deliver(&ctrl_pkt(7), &mut scratch.ctx(Time::ZERO)));
        assert_eq!(h.live_flows(), 1);
        assert!(h.deliver(&ctrl_pkt(7), &mut scratch.ctx(Time::ZERO)));
        // Endpoint reached its target and was dropped.
        assert_eq!(h.live_flows(), 0);
        // Late packet counts as stray.
        assert!(!h.deliver(&ctrl_pkt(7), &mut scratch.ctx(Time::ZERO)));
        assert_eq!(h.counters().stray_rx, 1);
    }

    #[test]
    fn immediately_finished_endpoint_not_registered() {
        let mut h = Host::new(0, &profile());
        let mut scratch = Scratch::default();
        h.register(
            9,
            Box::new(CountEp {
                got: 0,
                done_after: 0,
            }),
            &mut scratch.ctx(Time::ZERO),
        );
        assert_eq!(h.live_flows(), 0);
    }

    #[test]
    fn nic_classifies_by_class_map() {
        let mut h = Host::new(0, &profile());
        let qi = h.nic_enqueue(ctrl_pkt(1)).unwrap();
        assert_eq!(qi, 1);
        let legacy = Packet::new(
            2,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::Legacy,
            Payload::CreditStop,
        );
        assert_eq!(h.nic_enqueue(legacy).unwrap(), 2);
    }

    #[test]
    fn stale_timer_is_noop() {
        let mut h = Host::new(0, &profile());
        let mut scratch = Scratch::default();
        // No flow 3 registered; must not panic.
        h.fire_timer(3, 1, &mut scratch.ctx(Time::ZERO));
    }
}
