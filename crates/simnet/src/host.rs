//! End hosts.
//!
//! A host owns one NIC egress [`Port`] — configured exactly like an edge
//! switch port (§5, footnote 6: "NIC is essentially a special type of edge
//! switch") — and a table of live transport [`Endpoint`]s keyed by flow.
//!
//! Both per-flow tables (endpoints and armed timers) are sorted `Vec`s
//! rather than `BTreeMap`s: lookups stay `O(log n)` via binary search,
//! iteration order stays deterministic (ascending key, same as the maps
//! they replace), and the backing slabs are preallocated through
//! [`Host::reserve_flows`] so steady-state insert/remove churn never
//! touches the heap — `BTreeMap` node splits were one of the last
//! allocation sources on the hot datapath.

use flexpass_simcore::time::Time;
use flexpass_simcore::units::Bytes;
use flexpass_simcore::TimerHandle;

use crate::arena::{PacketArena, PacketId};
use crate::endpoint::{AppEvent, Endpoint, EndpointCtx, TimerCmd};
use crate::packet::{FlowId, HostId, Packet};
use crate::port::Port;
use crate::queue::DropReason;
use crate::switch::{ClassMap, SwitchProfile};

/// Per-host counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// Packets that arrived for a flow this host no longer (or never) knew.
    pub stray_rx: u64,
    /// Packets dropped at the NIC egress, by any reason.
    pub nic_drops: u64,
    /// Data bytes received by endpoints on this host.
    pub rx_data_bytes: Bytes,
}

/// An end host: NIC port + transport endpoints.
pub struct Host {
    /// This host's index in the topology host list.
    pub host_id: HostId,
    /// NIC egress port towards the ToR (or single switch).
    pub nic: Port,
    class_map: ClassMap,
    // Sorted by flow id: any iteration over live flows must be
    // deterministic (hash-map order would vary run to run and break
    // replayability).
    flows: Vec<(FlowId, Box<dyn Endpoint>)>,
    /// Calendar handle of the armed cancellable timer per token, sorted by
    /// token. Entries are removed when the timer is cancelled or its event
    /// is delivered.
    armed: Vec<(u64, TimerHandle)>,
    counters: HostCounters,
}

impl Host {
    /// Creates a host whose NIC is configured from `profile` (queue set and
    /// class map identical to edge switches; shared-buffer admission is not
    /// applied at hosts).
    pub fn new(host_id: HostId, profile: &SwitchProfile) -> Self {
        Host {
            host_id,
            nic: Port::new(&profile.port),
            class_map: profile.class_map,
            flows: Vec::new(),
            armed: Vec::new(),
            counters: HostCounters::default(),
        }
    }

    /// Preallocates the per-flow tables for `n` concurrent flows, so
    /// steady-state registration and timer churn stays off the heap.
    pub fn reserve_flows(&mut self, n: usize) {
        self.flows.reserve(n);
        // Transports arm a handful of timer kinds per flow.
        self.armed.reserve(n.saturating_mul(4));
    }

    /// Counters snapshot.
    pub fn counters(&self) -> HostCounters {
        self.counters
    }

    /// Number of live endpoints.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of currently armed cancellable timers (table entries).
    pub fn armed_timers(&self) -> usize {
        self.armed.len()
    }

    /// Records `hd` as the armed cancellable timer for `token`, returning
    /// the handle it replaced (if the token was already armed).
    pub(crate) fn arm_timer(&mut self, token: u64, hd: TimerHandle) -> Option<TimerHandle> {
        match self.armed.binary_search_by_key(&token, |e| e.0) {
            Ok(pos) => {
                let entry = self.armed.get_mut(pos).expect("binary_search hit in range");
                Some(std::mem::replace(&mut entry.1, hd))
            }
            Err(pos) => {
                self.armed.insert(pos, (token, hd));
                None
            }
        }
    }

    /// The armed handle for `token`, if any (read-only peek).
    pub(crate) fn armed_handle(&self, token: u64) -> Option<TimerHandle> {
        match self.armed.binary_search_by_key(&token, |e| e.0) {
            Ok(pos) => self.armed.get(pos).map(|e| e.1),
            Err(_) => None,
        }
    }

    /// Removes and returns the armed-timer entry for `token`.
    pub(crate) fn take_armed(&mut self, token: u64) -> Option<TimerHandle> {
        match self.armed.binary_search_by_key(&token, |e| e.0) {
            Ok(pos) => Some(self.armed.remove(pos).1),
            Err(_) => None,
        }
    }

    fn flow_pos(&self, flow: FlowId) -> Result<usize, usize> {
        self.flows.binary_search_by_key(&flow, |e| e.0)
    }

    /// Registers an endpoint for `flow` and runs its `activate` callback.
    pub fn register(&mut self, flow: FlowId, mut ep: Box<dyn Endpoint>, ctx: &mut EndpointCtx) {
        ep.activate(ctx);
        if !ep.finished() {
            match self.flow_pos(flow) {
                Ok(pos) => {
                    let entry = self.flows.get_mut(pos).expect("binary_search hit in range");
                    entry.1 = ep;
                }
                Err(pos) => self.flows.insert(pos, (flow, ep)),
            }
        }
    }

    /// Delivers an arriving packet to the owning endpoint. Returns `false`
    /// if no endpoint claimed it (stray late packet — dropped).
    pub fn deliver(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) -> bool {
        if pkt.is_data() {
            self.counters.rx_data_bytes += pkt.payload_bytes();
        }
        match self.flow_pos(pkt.flow) {
            Ok(pos) => {
                let ep = &mut self
                    .flows
                    .get_mut(pos)
                    .expect("binary_search hit in range")
                    .1;
                ep.on_packet(pkt, ctx);
                if ep.finished() {
                    self.flows.remove(pos);
                }
                true
            }
            Err(_) => {
                self.counters.stray_rx += 1;
                false
            }
        }
    }

    /// Fires a timer for `flow`; stale timers for departed flows are no-ops.
    pub fn fire_timer(&mut self, flow: FlowId, token: u64, ctx: &mut EndpointCtx) {
        if let Ok(pos) = self.flow_pos(flow) {
            let ep = &mut self
                .flows
                .get_mut(pos)
                .expect("binary_search hit in range")
                .1;
            ep.on_timer(token, ctx);
            if ep.finished() {
                self.flows.remove(pos);
            }
        }
    }

    /// Offers the packet behind `id` to the NIC egress queue chosen by the
    /// host's class map. Returns the queue index on success; on `Err` the
    /// caller keeps the id (and must release it).
    pub fn nic_enqueue(
        &mut self,
        arena: &mut PacketArena,
        id: PacketId,
    ) -> Result<usize, (DropReason, PacketId)> {
        let qidx = self
            .class_map
            .queue_for(arena.get(id).expect("enqueued id is live"));
        match self.nic.enqueue(arena, qidx, id) {
            Ok(()) => Ok(qidx),
            Err(r) => {
                self.counters.nic_drops += 1;
                Err((r, id))
            }
        }
    }
}

/// Scratch buffers a host callback writes into; owned by the simulator and
/// reused across events to avoid per-packet allocation. `tx` stages
/// [`PacketId`]s — the packets themselves are already arena-resident by
/// the time an endpoint hands them over.
#[derive(Default)]
pub struct Scratch {
    /// Ids of packets to transmit.
    pub tx: Vec<PacketId>,
    /// Timer requests, in issue order.
    pub timers: Vec<TimerCmd>,
    /// Application events.
    pub app: Vec<AppEvent>,
}

impl Scratch {
    /// Empties all buffers, retaining their capacity for the next burst.
    pub fn clear(&mut self) {
        self.tx.clear();
        self.timers.clear();
        self.app.clear();
    }

    /// Current backing capacities `(tx, timers, app)` — watched by the
    /// audit layer to prove the buffers are reused, not re-grown, across
    /// bursts.
    pub fn capacities(&self) -> (usize, usize, usize) {
        (
            self.tx.capacity(),
            self.timers.capacity(),
            self.app.capacity(),
        )
    }

    /// Builds an [`EndpointCtx`] over these buffers and the packet arena.
    pub fn ctx<'a>(&'a mut self, now: Time, arena: &'a mut PacketArena) -> EndpointCtx<'a> {
        EndpointCtx::new(now, arena, &mut self.tx, &mut self.timers, &mut self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::CTRL_WIRE;
    use crate::packet::{Payload, TrafficClass};
    use crate::port::{PortConfig, QueueSched};
    use crate::queue::QueueConfig;
    use flexpass_simcore::time::Rate;
    use flexpass_simcore::units::WireBytes;

    fn profile() -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate: Rate::from_gbps(10),
                queues: vec![
                    (
                        QueueConfig::capped(WireBytes::new(1_000)),
                        QueueSched::strict(0),
                    ),
                    (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
                    (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
                ],
            },
            class_map: ClassMap::Split {
                credit: 0,
                new_data: 1,
                new_ctrl: 1,
                legacy: 2,
            },
            shared_buffer: None,
        }
    }

    struct CountEp {
        got: u32,
        done_after: u32,
    }

    impl Endpoint for CountEp {
        fn activate(&mut self, _ctx: &mut EndpointCtx) {}
        fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {
            self.got += 1;
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
        fn finished(&self) -> bool {
            self.got >= self.done_after
        }
    }

    fn ctrl_pkt(flow: FlowId) -> Packet {
        Packet::new(
            flow,
            1,
            0,
            CTRL_WIRE,
            TrafficClass::NewCtrl,
            Payload::CreditStop,
        )
    }

    #[test]
    fn delivery_and_cleanup() {
        let mut h = Host::new(0, &profile());
        let mut arena = PacketArena::new();
        let mut scratch = Scratch::default();
        h.register(
            7,
            Box::new(CountEp {
                got: 0,
                done_after: 2,
            }),
            &mut scratch.ctx(Time::ZERO, &mut arena),
        );
        assert_eq!(h.live_flows(), 1);
        assert!(h.deliver(&ctrl_pkt(7), &mut scratch.ctx(Time::ZERO, &mut arena)));
        assert_eq!(h.live_flows(), 1);
        assert!(h.deliver(&ctrl_pkt(7), &mut scratch.ctx(Time::ZERO, &mut arena)));
        // Endpoint reached its target and was dropped.
        assert_eq!(h.live_flows(), 0);
        // Late packet counts as stray.
        assert!(!h.deliver(&ctrl_pkt(7), &mut scratch.ctx(Time::ZERO, &mut arena)));
        assert_eq!(h.counters().stray_rx, 1);
    }

    #[test]
    fn immediately_finished_endpoint_not_registered() {
        let mut h = Host::new(0, &profile());
        let mut arena = PacketArena::new();
        let mut scratch = Scratch::default();
        h.register(
            9,
            Box::new(CountEp {
                got: 0,
                done_after: 0,
            }),
            &mut scratch.ctx(Time::ZERO, &mut arena),
        );
        assert_eq!(h.live_flows(), 0);
    }

    #[test]
    fn flow_table_stays_sorted_under_out_of_order_registration() {
        let mut h = Host::new(0, &profile());
        let mut arena = PacketArena::new();
        let mut scratch = Scratch::default();
        h.reserve_flows(8);
        for flow in [9u64, 2, 17, 5] {
            h.register(
                flow,
                Box::new(CountEp {
                    got: 0,
                    done_after: 10,
                }),
                &mut scratch.ctx(Time::ZERO, &mut arena),
            );
        }
        assert_eq!(h.live_flows(), 4);
        // Every flow resolves by binary search regardless of insert order.
        for flow in [2u64, 5, 9, 17] {
            assert!(h.deliver(&ctrl_pkt(flow), &mut scratch.ctx(Time::ZERO, &mut arena)));
        }
        assert_eq!(h.counters().stray_rx, 0);
    }

    #[test]
    fn nic_classifies_by_class_map() {
        let mut h = Host::new(0, &profile());
        let mut arena = PacketArena::new();
        let id = arena.acquire(ctrl_pkt(1));
        let qi = h.nic_enqueue(&mut arena, id).unwrap();
        assert_eq!(qi, 1);
        let legacy = Packet::new(
            2,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::Legacy,
            Payload::CreditStop,
        );
        let id = arena.acquire(legacy);
        assert_eq!(h.nic_enqueue(&mut arena, id).unwrap(), 2);
    }

    #[test]
    fn stale_timer_is_noop() {
        let mut h = Host::new(0, &profile());
        let mut arena = PacketArena::new();
        let mut scratch = Scratch::default();
        // No flow 3 registered; must not panic.
        h.fire_timer(3, 1, &mut scratch.ctx(Time::ZERO, &mut arena));
    }
}
