//! Packet-level network substrate for the FlexPass reproduction.
//!
//! This crate models everything "below" the transport protocols:
//!
//! * [`packet`] — the on-wire packet model: traffic classes (DSCP analog),
//!   ECN bits, drop-precedence color, and transport payload headers.
//! * [`arena`] — the generation-indexed packet arena: every in-flight
//!   packet lives in one preallocated slab slot, addressed by a
//!   [`arena::PacketId`] whose generation tag rejects stale handles.
//! * [`queue`] — a byte-accounted FIFO with ECN marking and per-color
//!   (selective-drop) accounting.
//! * [`port`] — an egress port scheduling several queues with strict
//!   priority levels, Deficit Weighted Round Robin within a level, and
//!   token-bucket shaping (used for ExpressPass credit queues).
//! * [`switch`] — an output-queued switch with a shared buffer, dynamic
//!   buffer thresholds [Choudhury & Hahne], per-class queue mapping and
//!   ECMP routing.
//! * [`host`] — end hosts whose NIC egress is a full [`port::Port`] (the
//!   paper treats NICs as edge switches), hosting transport [`endpoint`]s.
//! * [`topology`] — dumbbell, single-switch star ("testbed"), and the
//!   paper's 3-tier Clos (8 core / 16 agg / 32 ToR / 192 hosts, 3:1
//!   oversubscribed).
//! * [`sim`] — the deterministic event-driven driver tying it together.
//! * [`partition`] / [`parsim`] — the partitioned parallel engine: the
//!   fabric cut into per-thread domains at rack granularity, advanced in
//!   conservative lock-step windows bounded by the cut's minimum link
//!   propagation (`--par-sim N` on the experiments binary).
//! * [`audit`] — invariant-audit hooks (byte conservation ledgers, buffer
//!   and shaper bounds), active under the default `audit` feature.
//! * [`trace`] — packet-lifecycle trace hooks (enqueue/dequeue/mark/drop,
//!   credits, retransmissions, timers), active under the default `trace`
//!   feature and inert until a tracer is installed.
//!
//! Transport protocols implement [`endpoint::Endpoint`] and are plugged in
//! through [`sim::TransportFactory`]; see the `flexpass-transport` and
//! `flexpass` crates.

pub mod arena;
pub mod audit;
pub mod consts;
pub mod endpoint;
pub mod host;
pub mod packet;
pub mod parsim;
pub mod partition;
pub mod port;
pub mod queue;
pub mod sim;
pub mod switch;
pub mod topology;
pub mod trace;

pub use arena::{PacketArena, PacketId};
pub use consts::*;
pub use endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats, TxStats};
pub use packet::{
    AckInfo, Color, CreditInfo, DataInfo, FlowId, FlowSpec, GrantInfo, HostId, Packet, Payload,
    Subflow, TrafficClass,
};
pub use parsim::ParSim;
pub use partition::{partition, Partition};
pub use port::{Port, PortConfig, QueueSched};
pub use queue::{DropReason, QueueConfig};
pub use sim::{
    Event, FlowRole, NetEnv, NetObserver, NodeId, NullObserver, PartitionCtx, Sim, TransportFactory,
};
pub use switch::{QueueSample, Switch, SwitchProfile};
pub use topology::{ClosParams, Topology};
