//! Topology builders: star ("testbed"), dumbbell, and the paper's 3-tier
//! Clos fabric.
//!
//! All builders produce a [`Topology`]: pre-wired nodes with shortest-path
//! ECMP routing tables installed. Port creation order is deterministic
//! (neighbors in ascending id order) which, combined with the symmetric flow
//! hash, guarantees that a flow's forward data path and reverse credit/ACK
//! path traverse the same links — the property ExpressPass credit shaping
//! depends on.

use flexpass_simcore::time::{Rate, TimeDelta};

use crate::host::Host;
use crate::sim::{Node, NodeId};
use crate::switch::{Switch, SwitchProfile};

/// A wired network ready to simulate.
pub struct Topology {
    /// All nodes; switches and hosts interleaved.
    pub nodes: Vec<Node>,
    /// Node id of each host, indexed by host id.
    pub hosts: Vec<NodeId>,
    /// Rack (ToR index) of each host; used for per-rack gradual deployment.
    pub rack_of: Vec<usize>,
    /// Host access link rate.
    pub host_rate: Rate,
    /// Worst-case propagation-only round-trip time between two hosts.
    pub base_rtt: TimeDelta,
}

/// Parameters of the paper's 3-tier Clos (§6.2 defaults).
#[derive(Clone, Copy, Debug)]
pub struct ClosParams {
    /// Core switches (paper: 8).
    pub n_core: usize,
    /// Aggregation switches (paper: 16).
    pub n_agg: usize,
    /// ToR switches (paper: 32).
    pub n_tor: usize,
    /// Hosts per ToR (paper: 6; 3:1 oversubscription with 2 uplinks).
    pub hosts_per_tor: usize,
    /// Aggregation switches per pod (paper: 2).
    pub aggs_per_pod: usize,
    /// Uniform link rate (paper: 40 Gbps).
    pub link_rate: Rate,
    /// Host–ToR propagation delay (includes host processing delay).
    pub host_prop: TimeDelta,
    /// Fabric link propagation delay.
    pub fabric_prop: TimeDelta,
}

impl Default for ClosParams {
    fn default() -> Self {
        // 6 hops host-to-host across the core; 2*(3+2+2+2+2+3) = 28 us RTT,
        // matching the paper's quoted base RTT.
        ClosParams {
            n_core: 8,
            n_agg: 16,
            n_tor: 32,
            hosts_per_tor: 6,
            aggs_per_pod: 2,
            link_rate: Rate::from_gbps(40),
            host_prop: TimeDelta::micros(3),
            fabric_prop: TimeDelta::micros(2),
        }
    }
}

impl ClosParams {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.n_tor * self.hosts_per_tor
    }

    /// A proportionally shrunk fabric for quick tests and benches
    /// (2 core / 4 agg / 8 ToR / `hosts_per_tor * 8` hosts).
    pub fn small() -> Self {
        ClosParams {
            n_core: 2,
            n_agg: 4,
            n_tor: 8,
            hosts_per_tor: 6,
            aggs_per_pod: 2,
            ..ClosParams::default()
        }
    }

    /// A scaled-out fabric with at least `hosts` hosts (rounded up to a
    /// whole pod): dense 40-host racks, 8 ToRs and 2 aggs per pod, 8
    /// cores — the shape the `scale` scenario drives to O(10k) hosts.
    /// Keeps the paper's link rates and propagation delays.
    pub fn with_hosts(hosts: usize) -> Self {
        const HOSTS_PER_TOR: usize = 40;
        const TORS_PER_POD: usize = 8;
        const AGGS_PER_POD: usize = 2;
        let per_pod = HOSTS_PER_TOR * TORS_PER_POD;
        let pods = hosts.div_ceil(per_pod).max(1);
        ClosParams {
            n_core: 8,
            n_agg: pods * AGGS_PER_POD,
            n_tor: pods * TORS_PER_POD,
            hosts_per_tor: HOSTS_PER_TOR,
            aggs_per_pod: AGGS_PER_POD,
            ..ClosParams::default()
        }
    }
}

/// Intermediate graph description used by all builders.
struct Graph {
    /// For each node: `(neighbor, propagation delay)` in port order.
    adj: Vec<Vec<(usize, TimeDelta)>>,
    /// `Some(host_id)` for host nodes, `None` for switches.
    host_of: Vec<Option<usize>>,
    /// Switch tier for hash slicing (ToR = 0, Agg = 1, Core = 2).
    tier: Vec<u8>,
}

impl Graph {
    fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            host_of: vec![None; n],
            tier: vec![0; n],
        }
    }

    fn link(&mut self, a: usize, b: usize, prop: TimeDelta) {
        self.adj[a].push((b, prop));
        self.adj[b].push((a, prop));
    }

    /// Materializes nodes, wires ports, and installs routing tables.
    fn build(
        self,
        n_hosts: usize,
        rack_of: Vec<usize>,
        host_rate: Rate,
        sw_profile: &SwitchProfile,
        host_profile: &SwitchProfile,
    ) -> Topology {
        let n = self.adj.len();
        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        let mut hosts = vec![usize::MAX; n_hosts];
        for (id, maybe_host) in self.host_of.iter().enumerate() {
            match maybe_host {
                Some(h) => {
                    assert_eq!(self.adj[id].len(), 1, "hosts have exactly one port");
                    nodes.push(Node::Host(Host::new(*h, host_profile)));
                    hosts[*h] = id;
                }
                None => {
                    nodes.push(Node::Switch(Switch::new(
                        sw_profile,
                        self.adj[id].len(),
                        self.tier[id],
                    )));
                }
            }
        }
        assert!(hosts.iter().all(|&x| x != usize::MAX));

        // Wire ports to peers.
        for (id, nbrs) in self.adj.iter().enumerate() {
            for (pi, &(peer, prop)) in nbrs.iter().enumerate() {
                let port = match &mut nodes[id] {
                    Node::Switch(s) => &mut s.ports[pi],
                    Node::Host(h) => &mut h.nic,
                };
                port.peer = peer;
                port.prop = prop;
            }
        }

        // Shortest-path ECMP tables: BFS from each host over the graph.
        let mut max_prop = TimeDelta::ZERO;
        for h in 0..n_hosts {
            let dst = hosts[h];
            let mut dist = vec![u32::MAX; n];
            let mut prop_to = vec![TimeDelta::ZERO; n];
            let mut queue = std::collections::VecDeque::new();
            dist[dst] = 0;
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &(v, prop) in &self.adj[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        prop_to[v] = prop_to[u] + prop;
                        queue.push_back(v);
                    }
                }
            }
            for (id, node) in nodes.iter_mut().enumerate() {
                if let Node::Switch(sw) = node {
                    if sw.routes.len() <= h {
                        sw.routes.resize(n_hosts, Vec::new());
                    }
                    if dist[id] == u32::MAX {
                        continue;
                    }
                    let cands: Vec<u16> = self.adj[id]
                        .iter()
                        .enumerate()
                        .filter(|(_, &(v, _))| dist[v] + 1 == dist[id])
                        .map(|(pi, _)| pi as u16)
                        .collect();
                    sw.routes[h] = cands;
                }
            }
            for other in 0..n_hosts {
                if other != h {
                    max_prop = max_prop.max(prop_to[hosts[other]]);
                }
            }
        }

        Topology {
            nodes,
            hosts,
            rack_of,
            host_rate,
            base_rtt: max_prop * 2,
        }
    }
}

impl Topology {
    /// `n_hosts` hosts hanging off one switch at `rate` ("testbed" star;
    /// also used for the dumbbell-style 2-to-1 microbenchmarks).
    pub fn star(
        n_hosts: usize,
        rate: Rate,
        host_prop: TimeDelta,
        sw_profile: &SwitchProfile,
        host_profile: &SwitchProfile,
    ) -> Topology {
        assert!(n_hosts >= 2);
        let mut g = Graph::new(n_hosts + 1);
        // Node 0 is the switch; hosts follow.
        for h in 0..n_hosts {
            g.host_of[1 + h] = Some(h);
            g.link(0, 1 + h, host_prop);
        }
        g.build(n_hosts, vec![0; n_hosts], rate, sw_profile, host_profile)
    }

    /// Classic dumbbell: `n_left` hosts on switch L, `n_right` on switch R,
    /// joined by a single bottleneck link at the same rate.
    pub fn dumbbell(
        n_left: usize,
        n_right: usize,
        rate: Rate,
        host_prop: TimeDelta,
        bottleneck_prop: TimeDelta,
        sw_profile: &SwitchProfile,
        host_profile: &SwitchProfile,
    ) -> Topology {
        let n_hosts = n_left + n_right;
        let mut g = Graph::new(n_hosts + 2);
        // Nodes 0 and 1 are the switches.
        g.link(0, 1, bottleneck_prop);
        let mut rack_of = Vec::with_capacity(n_hosts);
        for h in 0..n_hosts {
            let sw = if h < n_left { 0 } else { 1 };
            g.host_of[2 + h] = Some(h);
            g.link(sw, 2 + h, host_prop);
            rack_of.push(sw);
        }
        g.build(n_hosts, rack_of, rate, sw_profile, host_profile)
    }

    /// The paper's 3-tier Clos fabric.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not divisible into pods/core groups.
    pub fn clos(
        p: ClosParams,
        sw_profile: &SwitchProfile,
        host_profile: &SwitchProfile,
    ) -> Topology {
        assert!(
            p.n_agg.is_multiple_of(p.aggs_per_pod),
            "aggs must divide into pods"
        );
        let pods = p.n_agg / p.aggs_per_pod;
        assert!(p.n_tor.is_multiple_of(pods), "tors must divide into pods");
        let tors_per_pod = p.n_tor / pods;
        assert!(
            p.n_core.is_multiple_of(p.aggs_per_pod),
            "cores must divide into agg groups"
        );
        let cores_per_agg = p.n_core / p.aggs_per_pod;
        let n_hosts = p.n_hosts();

        // Node layout: [cores][aggs][tors][hosts].
        let core_base = 0;
        let agg_base = core_base + p.n_core;
        let tor_base = agg_base + p.n_agg;
        let host_base = tor_base + p.n_tor;
        let mut g = Graph::new(host_base + n_hosts);
        for c in 0..p.n_core {
            g.tier[core_base + c] = 2;
        }
        for a in 0..p.n_agg {
            g.tier[agg_base + a] = 1;
        }
        for t in 0..p.n_tor {
            g.tier[tor_base + t] = 0;
        }

        // Hosts to ToRs (port order: hosts first, then uplinks — ascending).
        let mut rack_of = Vec::with_capacity(n_hosts);
        for t in 0..p.n_tor {
            for s in 0..p.hosts_per_tor {
                let h = t * p.hosts_per_tor + s;
                g.host_of[host_base + h] = Some(h);
                g.link(tor_base + t, host_base + h, p.host_prop);
                rack_of.push(t);
            }
        }
        // ToRs to both aggs in their pod, ascending agg order.
        for t in 0..p.n_tor {
            let pod = t / tors_per_pod;
            for j in 0..p.aggs_per_pod {
                let a = pod * p.aggs_per_pod + j;
                g.link(tor_base + t, agg_base + a, p.fabric_prop);
            }
        }
        // Aggs to their core group, ascending core order.
        for a in 0..p.n_agg {
            let j = a % p.aggs_per_pod;
            for k in 0..cores_per_agg {
                let c = j * cores_per_agg + k;
                g.link(agg_base + a, core_base + c, p.fabric_prop);
            }
        }

        g.build(n_hosts, rack_of, p.link_rate, sw_profile, host_profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, Payload, TrafficClass};
    use crate::port::{PortConfig, QueueSched};
    use crate::queue::QueueConfig;
    use crate::switch::ClassMap;

    fn profile() -> SwitchProfile {
        SwitchProfile {
            port: PortConfig {
                rate: Rate::from_gbps(40),
                queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
            },
            class_map: ClassMap::Single,
            shared_buffer: None,
        }
    }

    fn pkt(flow: u64, src: usize, dst: usize) -> Packet {
        Packet::new(
            flow,
            src,
            dst,
            crate::consts::DATA_WIRE,
            TrafficClass::Legacy,
            Payload::CreditStop,
        )
    }

    #[test]
    fn star_wiring() {
        let t = Topology::star(
            9,
            Rate::from_gbps(10),
            TimeDelta::micros(5),
            &profile(),
            &profile(),
        );
        assert_eq!(t.nodes.len(), 10);
        assert_eq!(t.hosts.len(), 9);
        assert_eq!(t.base_rtt, TimeDelta::micros(20));
        match &t.nodes[0] {
            Node::Switch(s) => {
                assert_eq!(s.ports.len(), 9);
                assert_eq!(s.routes.len(), 9);
                for h in 0..9 {
                    assert_eq!(s.routes[h], vec![h as u16]);
                }
            }
            _ => panic!("node 0 should be the switch"),
        }
    }

    #[test]
    fn clos_shape() {
        let t = Topology::clos(ClosParams::default(), &profile(), &profile());
        assert_eq!(t.hosts.len(), 192);
        assert_eq!(t.nodes.len(), 8 + 16 + 32 + 192);
        // 28 us base RTT across the core.
        assert_eq!(t.base_rtt, TimeDelta::micros(28));
        // Every switch has 8 ports in the paper fabric.
        for node in &t.nodes {
            if let Node::Switch(s) = node {
                assert_eq!(s.ports.len(), 8);
            }
        }
        // Racks are assigned 6 hosts each.
        assert_eq!(t.rack_of.len(), 192);
        assert_eq!(t.rack_of.iter().filter(|&&r| r == 0).count(), 6);
    }

    /// `with_hosts` must round up to whole pods and always satisfy the
    /// divisibility invariants `Topology::clos` asserts.
    #[test]
    fn with_hosts_rounds_to_whole_pods() {
        let p = ClosParams::with_hosts(10_240);
        assert_eq!(p.n_hosts(), 10_240);
        assert_eq!(p.n_tor, 256);
        assert_eq!(p.n_agg, 64);
        assert_eq!(p.n_core, 8);
        // Partial pod rounds up.
        let p = ClosParams::with_hosts(321);
        assert_eq!(p.n_hosts(), 640);
        // Degenerate request still builds one pod.
        let p = ClosParams::with_hosts(0);
        assert_eq!(p.n_hosts(), 320);
        // The invariants clos() asserts hold for a sweep of sizes (build
        // the smallest one for real to exercise the wiring).
        for hosts in [1, 320, 2_560, 10_240] {
            let p = ClosParams::with_hosts(hosts);
            assert!(p.n_agg.is_multiple_of(p.aggs_per_pod));
            let pods = p.n_agg / p.aggs_per_pod;
            assert!(p.n_tor.is_multiple_of(pods));
            assert!(p.n_core.is_multiple_of(p.aggs_per_pod));
        }
        let t = Topology::clos(ClosParams::with_hosts(1), &profile(), &profile());
        assert_eq!(t.hosts.len(), 320);
        assert_eq!(t.rack_of.iter().filter(|&&r| r == 0).count(), 40);
    }

    #[test]
    fn clos_ecmp_candidates() {
        let t = Topology::clos(ClosParams::default(), &profile(), &profile());
        // ToR 0 (node 8 + 16 = 24) routing to a host in another pod: both
        // uplinks are candidates.
        let far_host = 191;
        match &t.nodes[24] {
            Node::Switch(tor0) => {
                assert_eq!(tor0.tier, 0);
                assert_eq!(tor0.routes[far_host].len(), 2);
                // To a local host: exactly one (the access port).
                assert_eq!(tor0.routes[0].len(), 1);
            }
            _ => panic!("node 24 should be ToR 0"),
        }
        // Agg routing to a far pod: all 4 core uplinks are candidates.
        match &t.nodes[8] {
            Node::Switch(agg0) => {
                assert_eq!(agg0.tier, 1);
                assert_eq!(agg0.routes[far_host].len(), 4);
            }
            _ => panic!("node 8 should be Agg 0"),
        }
    }

    #[test]
    fn clos_path_symmetry() {
        // Forward and reverse packets of the same flow must traverse the
        // same switches. Walk both directions hop by hop.
        let t = Topology::clos(ClosParams::default(), &profile(), &profile());
        for flow in 0..200u64 {
            let (src, dst) = (0usize, 190usize);
            let fwd = walk(&t, pkt(flow, src, dst), t.hosts[src]);
            let rev = walk(&t, pkt(flow, dst, src), t.hosts[dst]);
            let mut rev_rev = rev.clone();
            rev_rev.reverse();
            assert_eq!(fwd, rev_rev, "flow {flow} asymmetric");
        }
    }

    /// Follows routing decisions from `from` to the packet's destination,
    /// returning the sequence of node ids visited (inclusive).
    fn walk(t: &Topology, p: Packet, from: NodeId) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        for _ in 0..16 {
            let next = match &t.nodes[cur] {
                Node::Host(h) => {
                    if h.host_id == p.dst && path.len() > 1 {
                        break;
                    }
                    h.nic.peer
                }
                Node::Switch(s) => {
                    let port = s.route(&p);
                    s.ports[port].peer
                }
            };
            path.push(next);
            cur = next;
            if let Node::Host(h) = &t.nodes[cur] {
                if h.host_id == p.dst {
                    break;
                }
            }
        }
        path
    }

    #[test]
    fn clos_ecmp_spreads_flows() {
        // Different flows between the same pair should use different cores.
        let t = Topology::clos(ClosParams::default(), &profile(), &profile());
        let mut cores_seen = std::collections::HashSet::new();
        for flow in 0..64u64 {
            let path = walk(&t, pkt(flow, 0, 190), t.hosts[0]);
            // Path: host, tor, agg, core, agg, tor, host.
            assert_eq!(path.len(), 7, "path {path:?}");
            cores_seen.insert(path[3]);
        }
        assert!(cores_seen.len() >= 4, "only cores {cores_seen:?} used");
    }

    #[test]
    fn dumbbell_routes_through_bottleneck() {
        let t = Topology::dumbbell(
            2,
            2,
            Rate::from_gbps(10),
            TimeDelta::micros(1),
            TimeDelta::micros(2),
            &profile(),
            &profile(),
        );
        let path = walk(&t, pkt(1, 0, 2), t.hosts[0]);
        // host0 -> swL -> swR -> host2.
        assert_eq!(path.len(), 4);
        assert_eq!(path[1], 0);
        assert_eq!(path[2], 1);
        assert_eq!(t.base_rtt, TimeDelta::micros(8));
    }
}
