//! Property tests for the egress-port scheduler: DWRR fairness, strict
//! priority, and token-bucket shaping must hold for arbitrary parameters.

use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::{Bytes, WireBytes};
use flexpass_simnet::arena::PacketArena;
use flexpass_simnet::consts::{CTRL_WIRE, DATA_HEADER_WIRE, DATA_WIRE};
use flexpass_simnet::packet::{CreditInfo, DataInfo, Packet, Payload, Subflow, TrafficClass};
use flexpass_simnet::port::{Decision, Port, PortConfig, QueueSched};
use flexpass_simnet::queue::{DropReason, QueueConfig};
use proptest::prelude::*;

/// [`Decision`] with the served packet copied out of the arena, so
/// assertions can inspect headers by value.
#[derive(Debug)]
enum Out {
    Send(Packet),
    WaitUntil(Time),
    Idle,
}

fn enq(port: &mut Port, arena: &mut PacketArena, q: usize, pkt: Packet) -> Result<(), DropReason> {
    let id = arena.acquire(pkt);
    port.enqueue(arena, q, id).inspect_err(|_| {
        arena.release(id);
    })
}

fn next(port: &mut Port, arena: &mut PacketArena, now: Time) -> Out {
    match port.next_packet(arena, now) {
        Decision::Send(id) => Out::Send(arena.release(id).expect("sent id is live")),
        Decision::WaitUntil(t) => Out::WaitUntil(t),
        Decision::Idle => Out::Idle,
    }
}

fn data(flow: u64, wire: WireBytes) -> Packet {
    Packet::new(
        flow,
        0,
        1,
        wire,
        TrafficClass::NewData,
        Payload::Data(DataInfo {
            flow_seq: 0,
            sub_seq: 0,
            sub: Subflow::Only,
            payload: Bytes::new(wire.get().saturating_sub(DATA_HEADER_WIRE.get())),
            retx: false,
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two DWRR queues with arbitrary weights converge to the configured
    /// byte-share ratio when both stay backlogged.
    #[test]
    fn dwrr_respects_arbitrary_weights(w1 in 0.05f64..0.95) {
        let w2 = 1.0 - w1;
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::weighted(0, w1)),
                (QueueConfig::plain(), QueueSched::weighted(0, w2)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        // Distinguishable sizes within 1% so byte-fairness ~ packet-fairness.
        let n = 3000;
        for i in 0..n {
            enq(&mut port, &mut a, 0, data(i, WireBytes::new(1530))).unwrap();
            enq(&mut port, &mut a, 1, data(i, DATA_WIRE)).unwrap();
        }
        let mut bytes = [0f64; 2];
        for _ in 0..n {
            match next(&mut port, &mut a, Time::ZERO) {
                Out::Send(p) => {
                    let qi = if p.wire == WireBytes::new(1530) { 0 } else { 1 };
                    bytes[qi] += p.wire.as_f64();
                }
                _ => break,
            }
        }
        let share = bytes[0] / (bytes[0] + bytes[1]);
        prop_assert!(
            (share - w1).abs() < 0.05,
            "queue-0 byte share {share:.3} vs weight {w1:.3}"
        );
    }

    /// Any weight vector and packet-size mix drains completely without
    /// tripping the DWRR progress bound, conserving packets and bytes.
    /// Exercises tiny weights against jumbo heads, where the old
    /// MTU/min-quantum pass bound under-counted and panicked.
    #[test]
    fn dwrr_drains_any_weights_and_sizes(
        weights in prop::collection::vec(0.0005f64..1.0, 2..5),
        sizes in prop::collection::vec(85u64..9_000, 1..60),
        seed in 0u64..10_000,
    ) {
        use flexpass_simcore::rng::SimRng;
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: weights
                .iter()
                .map(|&w| (QueueConfig::plain(), QueueSched::weighted(0, w)))
                .collect(),
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        let mut rng = SimRng::new(seed);
        let mut in_bytes = 0u64;
        for (i, &wire) in sizes.iter().enumerate() {
            let q = rng.index(weights.len());
            enq(&mut port, &mut a, q, data(i as u64, WireBytes::new(wire))).unwrap();
            in_bytes += wire;
        }
        let mut out = 0usize;
        let mut out_bytes = 0u64;
        while let Out::Send(p) = next(&mut port, &mut a, Time::ZERO) {
            out += 1;
            out_bytes += p.wire.get();
            prop_assert!(out <= sizes.len(), "served more packets than enqueued");
        }
        prop_assert_eq!(out, sizes.len());
        prop_assert_eq!(out_bytes, in_bytes);
        prop_assert!(!port.has_backlog());
    }

    /// A strict-priority queue is always served before lower levels, for
    /// any interleaving of enqueues.
    #[test]
    fn strict_priority_never_inverted(seed in 0u64..10_000) {
        use flexpass_simcore::rng::SimRng;
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (QueueConfig::plain(), QueueSched::strict(0)),
                (QueueConfig::plain(), QueueSched::strict(1)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        let mut rng = SimRng::new(seed);
        let mut hi_backlog = 0u32;
        for _ in 0..200 {
            // Random enqueues.
            if rng.chance(0.5) {
                enq(&mut port, &mut a, 0, data(1, CTRL_WIRE)).unwrap();
                hi_backlog += 1;
            }
            if rng.chance(0.5) {
                enq(&mut port, &mut a, 1, data(2, DATA_WIRE)).unwrap();
            }
            // One service opportunity.
            if let Out::Send(p) = next(&mut port, &mut a, Time::ZERO) {
                if hi_backlog > 0 {
                    prop_assert_eq!(
                        p.wire,
                        CTRL_WIRE,
                        "low-priority packet served while high backlogged"
                    );
                    hi_backlog -= 1;
                }
            }
        }
    }

    /// A shaped queue never exceeds its configured long-run rate, for any
    /// shaper rate and burst.
    #[test]
    fn shaper_long_run_rate_bound(
        rate_mbps in 10u64..2_000,
        burst_pkts in 1u64..8,
    ) {
        let rate = Rate::from_mbps(rate_mbps);
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![(
                QueueConfig::plain(),
                QueueSched::strict(0).shaped(rate, CTRL_WIRE * burst_pkts),
            )],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        let n = 400u64;
        for i in 0..n {
            enq(&mut port, &mut a, 0,
                Packet::new(
                    i,
                    0,
                    1,
                    CTRL_WIRE,
                    TrafficClass::Credit,
                    Payload::Credit(CreditInfo { idx: i as u32 }),
                ),
            )
            .unwrap();
        }
        let mut now = Time::ZERO;
        let mut sent = 0u64;
        let mut guard = 0;
        while sent < n {
            match next(&mut port, &mut a, now) {
                Out::Send(_) => sent += 1,
                Out::WaitUntil(t) => {
                    prop_assert!(t > now, "wake time must advance");
                    now = t;
                }
                Out::Idle => break,
            }
            guard += 1;
            prop_assert!(guard < 10 * n, "scheduler livelock");
        }
        prop_assert_eq!(sent, n);
        // Long-run rate: bytes sent over elapsed time, discounting the burst.
        let elapsed = now.as_secs_f64();
        if elapsed > 0.0 {
            let achieved_bps =
                (CTRL_WIRE * (n - burst_pkts)).as_f64() * 8.0 / elapsed;
            prop_assert!(
                achieved_bps <= rate.as_bps() as f64 * 1.02,
                "achieved {achieved_bps:.0} bps > shaper {}",
                rate.as_bps()
            );
        }
    }

    /// Work conservation: while any unshaped queue is backlogged, the port
    /// never reports WaitUntil or Idle.
    #[test]
    fn work_conserving_with_mixed_queues(seed in 0u64..10_000) {
        use flexpass_simcore::rng::SimRng;
        let cfg = PortConfig {
            rate: Rate::from_gbps(10),
            queues: vec![
                (
                    QueueConfig::capped(WireBytes::new(1_000)),
                    QueueSched::strict(0).shaped(Rate::from_mbps(1), CTRL_WIRE),
                ),
                (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
                (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
            ],
        };
        let mut port = Port::new(&cfg);
        let mut a = PacketArena::new();
        let mut rng = SimRng::new(seed);
        let now = Time::from_millis(1);
        let mut backlog = 0u32;
        for _ in 0..300 {
            if rng.chance(0.6) {
                let q = 1 + rng.index(2);
                enq(&mut port, &mut a, q, data(3, DATA_WIRE)).unwrap();
                backlog += 1;
            }
            if rng.chance(0.3) {
                let _ = enq(&mut port, &mut a, 0,
                    Packet::new(
                        9,
                        0,
                        1,
                        CTRL_WIRE,
                        TrafficClass::Credit,
                        Payload::Credit(CreditInfo { idx: 0 }),
                    ),
                );
            }
            if backlog > 0 {
                match next(&mut port, &mut a, now) {
                    Out::Send(p) => {
                        if p.class == TrafficClass::NewData {
                            backlog -= 1;
                        }
                    }
                    other => {
                        prop_assert!(
                            false,
                            "not work conserving with {backlog} backlogged: {other:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic sanity: three-queue FlexPass configuration serves credits
/// first, then splits data by weight.
#[test]
fn flexpass_port_order() {
    let cfg = PortConfig {
        rate: Rate::from_gbps(10),
        queues: vec![
            (
                QueueConfig::capped(WireBytes::new(1_000)),
                QueueSched::strict(0).shaped(Rate::from_gbps(1), CTRL_WIRE * 10),
            ),
            (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
            (QueueConfig::plain(), QueueSched::weighted(1, 0.5)),
        ],
    };
    let mut port = Port::new(&cfg);
    let mut a = PacketArena::new();
    enq(&mut port, &mut a, 1, data(1, DATA_WIRE)).unwrap();
    enq(&mut port, &mut a, 2, data(2, DATA_WIRE)).unwrap();
    enq(
        &mut port,
        &mut a,
        0,
        Packet::new(
            3,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        ),
    )
    .unwrap();
    let t = Time::from_millis(1);
    match next(&mut port, &mut a, t) {
        Out::Send(p) => assert_eq!(p.class, TrafficClass::Credit),
        other => panic!("expected credit first, got {other:?}"),
    }
    let mut classes = Vec::new();
    for _ in 0..2 {
        if let Out::Send(p) = next(&mut port, &mut a, t) {
            classes.push(p.flow);
        }
    }
    classes.sort_unstable();
    assert_eq!(classes, vec![1, 2]);
    let _ = TimeDelta::ZERO;
}
