//! Differential property tests: the partitioned conservative-sync engine
//! (`ParSim`) must agree with the serial engine on randomized multi-pod
//! Clos fabrics — identical flow-completion counts, identical per-flow
//! FCTs, and identical adjusted event counts at 2 and 4 domains.
//!
//! The transport is a deterministic paced blaster (fixed burst every 2 µs,
//! no congestion feedback) and flow starts carry prime-offset jitter, so
//! no two same-instant events contend for a port and the runs are exactly
//! comparable. Feedback transports at saturation agree only up to calendar
//! tie order of same-instant events on opposite sides of a cut (see the
//! `parsim` module doc); the bench crate bounds that drift separately.

use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::Bytes;
use flexpass_simnet::consts::{data_wire_bytes, packets_for, payload_of_packet};
use flexpass_simnet::endpoint::{AppEvent, Endpoint, EndpointCtx, RxStats, TxStats};
use flexpass_simnet::packet::{DataInfo, Packet, Payload, Subflow, TrafficClass};
use flexpass_simnet::port::{PortConfig, QueueSched};
use flexpass_simnet::queue::QueueConfig;
use flexpass_simnet::sim::{timer_token, NetEnv, NetObserver, Sim, TransportFactory};
use flexpass_simnet::switch::{ClassMap, SwitchProfile};
use flexpass_simnet::topology::{ClosParams, Topology};
use flexpass_simnet::{partition, FlowSpec, ParSim};
use proptest::prelude::*;

fn profile() -> SwitchProfile {
    SwitchProfile {
        port: PortConfig {
            rate: Rate::from_gbps(40),
            queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
        },
        class_map: ClassMap::Single,
        shared_buffer: None,
    }
}

/// Paced blast sender: four packets per 2 µs timer tick until the flow's
/// bytes are out. Stateless per flow, so the factory clones trivially and
/// the emission schedule is a pure function of the spec — identical in
/// every domain layout.
struct PacedSender {
    spec: FlowSpec,
    next_seq: u32,
    done: bool,
}

impl Endpoint for PacedSender {
    fn activate(&mut self, ctx: &mut EndpointCtx) {
        ctx.set_timer(ctx.now, timer_token(self.spec.id, 1));
    }
    fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut EndpointCtx) {}
    fn on_timer(&mut self, _token: u64, ctx: &mut EndpointCtx) {
        let total = packets_for(self.spec.size).get();
        for _ in 0..4 {
            if self.next_seq >= total {
                break;
            }
            let pay = payload_of_packet(self.spec.size, self.next_seq);
            ctx.send(Packet::new(
                self.spec.id,
                self.spec.src,
                self.spec.dst,
                data_wire_bytes(pay),
                TrafficClass::Legacy,
                Payload::Data(DataInfo {
                    flow_seq: self.next_seq,
                    sub_seq: self.next_seq,
                    sub: Subflow::Only,
                    payload: pay,
                    retx: false,
                }),
            ));
            self.next_seq += 1;
        }
        if self.next_seq < total {
            ctx.set_timer(ctx.now + TimeDelta::micros(2), timer_token(self.spec.id, 1));
        } else if !self.done {
            self.done = true;
            ctx.emit(AppEvent::SenderDone {
                flow: self.spec.id,
                stats: TxStats::default(),
            });
        }
    }
    fn finished(&self) -> bool {
        self.done
    }
}

struct CountReceiver {
    spec: FlowSpec,
    got: Bytes,
    done: bool,
}

impl Endpoint for CountReceiver {
    fn activate(&mut self, _ctx: &mut EndpointCtx) {}
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        self.got += pkt.payload_bytes();
        if self.got >= self.spec.size && !self.done {
            self.done = true;
            ctx.emit(AppEvent::FlowCompleted {
                flow: self.spec.id,
                stats: RxStats::default(),
            });
        }
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
    fn finished(&self) -> bool {
        self.done
    }
}

struct PacedFactory;

impl TransportFactory for PacedFactory {
    fn sender(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(PacedSender {
            spec: *flow,
            next_seq: 0,
            done: false,
        })
    }
    fn receiver(&mut self, flow: &FlowSpec, _env: &NetEnv) -> Box<dyn Endpoint> {
        Box::new(CountReceiver {
            spec: *flow,
            got: Bytes::ZERO,
            done: false,
        })
    }
    fn try_clone(&self) -> Option<Box<dyn TransportFactory>> {
        Some(Box::new(PacedFactory))
    }
}

/// Records flow completions `(flow id, fct ns)` for order-insensitive
/// comparison after sorting.
#[derive(Default)]
struct FctLog {
    completed: Vec<(u64, u64)>,
}

impl NetObserver for FctLog {
    fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
        if let AppEvent::FlowCompleted { flow, .. } = ev {
            self.completed.push((*flow, now.as_nanos()));
        }
    }
}

/// Derives a valid flow set from opaque seeds: `src != dst` by
/// construction, sizes a few packets to a couple dozen, starts jittered
/// by primes so no two flows share an instant.
fn flows_from_seeds(seeds: &[u64], n_hosts: usize) -> Vec<FlowSpec> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let src = (s % n_hosts as u64) as usize;
            let hop = 1 + ((s >> 8) as usize % (n_hosts - 1));
            FlowSpec {
                id: i as u64,
                src,
                dst: (src + hop) % n_hosts,
                size: Bytes::new(6_000 + (s >> 16) % 30_000),
                start: Time::from_nanos(i as u64 * 977 + (s >> 32) % 739),
                tag: 0,
                fg: false,
            }
        })
        .collect()
}

type RunResult = (u64, usize, Vec<(u64, u64)>);

fn run_serial(params: ClosParams, flows: &[FlowSpec]) -> RunResult {
    let p = profile();
    let topo = Topology::clos(params, &p, &p);
    let mut sim = Sim::new(topo, Box::new(PacedFactory), FctLog::default());
    for f in flows {
        sim.schedule_flow(*f);
    }
    sim.run_to_completion(TimeDelta::micros(50));
    let mut fcts = sim.observer.completed.clone();
    fcts.sort_unstable();
    (sim.events_processed(), sim.flows_completed(), fcts)
}

fn run_par(params: ClosParams, flows: &[FlowSpec], n: usize) -> RunResult {
    let p = profile();
    let topo = Topology::clos(params, &p, &p);
    let part = partition(topo, n).ok().expect("multi-pod clos partitions");
    let k = part.n_domains();
    let factories: Vec<Box<dyn TransportFactory>> = (0..k)
        .map(|_| Box::new(PacedFactory) as Box<dyn TransportFactory>)
        .collect();
    let observers: Vec<FctLog> = (0..k).map(|_| FctLog::default()).collect();
    let mut par = ParSim::new(part, factories, observers, flows.len());
    for f in flows {
        par.schedule_flow(*f);
    }
    par.run_to_completion(TimeDelta::micros(50));
    let events = par.events_processed();
    let done = par.flows_completed();
    let mut fcts: Vec<(u64, u64)> = par
        .into_observers()
        .into_iter()
        .flat_map(|o| o.completed)
        .collect();
    fcts.sort_unstable();
    (events, done, fcts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serial and partitioned runs of a randomized multi-pod fabric agree
    /// exactly: completions, per-flow FCTs, and adjusted event counts.
    #[test]
    fn par_engine_matches_serial_on_random_fabrics(
        n_tor in prop::sample::select(vec![4usize, 6, 8]),
        hosts_per_tor in prop::sample::select(vec![2usize, 3, 4]),
        seeds in prop::collection::vec(0u64..u64::MAX, 4..13),
    ) {
        let params = ClosParams { n_tor, hosts_per_tor, ..ClosParams::small() };
        let flows = flows_from_seeds(&seeds, n_tor * hosts_per_tor);
        let serial = run_serial(params, &flows);
        prop_assert_eq!(serial.1, flows.len(), "serial run must complete every flow");
        for n in [2usize, 4] {
            let par = run_par(params, &flows, n);
            prop_assert_eq!(par.1, serial.1, "completions diverged at n={}", n);
            prop_assert_eq!(&par.2, &serial.2, "per-flow FCTs diverged at n={}", n);
            prop_assert_eq!(par.0, serial.0, "event counts diverged at n={}", n);
        }
    }

    /// The partitioned engine is deterministic: two runs at the same
    /// domain count are bit-for-bit identical in everything we can see.
    #[test]
    fn par_engine_is_deterministic(
        n_tor in prop::sample::select(vec![4usize, 8]),
        seeds in prop::collection::vec(0u64..u64::MAX, 4..10),
    ) {
        let params = ClosParams { n_tor, hosts_per_tor: 3, ..ClosParams::small() };
        let flows = flows_from_seeds(&seeds, n_tor * 3);
        for n in [2usize, 4] {
            let first = run_par(params, &flows, n);
            let second = run_par(params, &flows, n);
            prop_assert_eq!(first, second, "nondeterministic run at n={}", n);
        }
    }
}
