//! Property tests over topology construction and ECMP routing.

use flexpass_simcore::time::{Rate, TimeDelta};
use flexpass_simnet::packet::{Packet, Payload, TrafficClass};
use flexpass_simnet::port::{PortConfig, QueueSched};
use flexpass_simnet::queue::QueueConfig;
use flexpass_simnet::sim::{Node, NodeId};
use flexpass_simnet::switch::{ClassMap, SwitchProfile};
use flexpass_simnet::topology::{ClosParams, Topology};
use proptest::prelude::*;

fn profile() -> SwitchProfile {
    SwitchProfile {
        port: PortConfig {
            rate: Rate::from_gbps(40),
            queues: vec![(QueueConfig::plain(), QueueSched::strict(0))],
        },
        class_map: ClassMap::Single,
        shared_buffer: None,
    }
}

fn pkt(flow: u64, src: usize, dst: usize) -> Packet {
    Packet::new(
        flow,
        src,
        dst,
        flexpass_simnet::consts::DATA_WIRE,
        TrafficClass::Legacy,
        Payload::CreditStop,
    )
}

/// Follows hop-by-hop routing decisions; returns node ids visited.
fn walk(t: &Topology, p: Packet, from: NodeId) -> Vec<NodeId> {
    let mut path = vec![from];
    let mut cur = from;
    for _ in 0..32 {
        let next = match &t.nodes[cur] {
            Node::Host(h) => {
                if h.host_id == p.dst && path.len() > 1 {
                    break;
                }
                h.nic.peer
            }
            Node::Switch(s) => {
                let port = s.route(&p);
                s.ports[port].peer
            }
        };
        path.push(next);
        cur = next;
        if let Node::Host(h) = &t.nodes[cur] {
            if h.host_id == p.dst {
                break;
            }
        }
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any valid Clos shape: every flow's forward path reaches its
    /// destination within 6 hops, and the reverse path visits exactly the
    /// same nodes (the symmetric-routing property ExpressPass needs).
    #[test]
    fn clos_routing_sound_and_symmetric(
        pods in 2usize..5,
        aggs_per_pod in prop::sample::select(vec![1usize, 2]),
        tors_per_pod in 1usize..4,
        hosts_per_tor in 2usize..5,
        cores_per_agg in 1usize..3,
        flow_salt in 0u64..1000,
    ) {
        let p = ClosParams {
            n_core: aggs_per_pod * cores_per_agg,
            n_agg: pods * aggs_per_pod,
            n_tor: pods * tors_per_pod,
            hosts_per_tor,
            aggs_per_pod,
            link_rate: Rate::from_gbps(40),
            host_prop: TimeDelta::micros(3),
            fabric_prop: TimeDelta::micros(2),
        };
        let t = Topology::clos(p, &profile(), &profile());
        let n = t.hosts.len();
        prop_assert_eq!(n, p.n_hosts());

        // Check a spread of pairs including intra-rack, intra-pod and
        // cross-pod.
        let pairs = [
            (0, 1 % n),
            (0, n - 1),
            (n / 2, 0),
            ((flow_salt as usize) % n, (flow_salt as usize * 7 + 1) % n),
        ];
        for &(a, b) in &pairs {
            if a == b {
                continue;
            }
            let fwd = walk(&t, pkt(flow_salt, a, b), t.hosts[a]);
            prop_assert_eq!(
                *fwd.last().unwrap(),
                t.hosts[b],
                "flow {}->{} did not reach destination: {:?}",
                a,
                b,
                fwd
            );
            prop_assert!(fwd.len() <= 7, "path too long: {fwd:?}");
            let rev = walk(&t, pkt(flow_salt, b, a), t.hosts[b]);
            let mut rr = rev.clone();
            rr.reverse();
            prop_assert_eq!(&fwd, &rr, "asymmetric path {}<->{}", a, b);
        }
    }

    /// Star topologies route every pair directly through the hub.
    #[test]
    fn star_routing(n_hosts in 2usize..32, flow in 0u64..100) {
        let t = Topology::star(
            n_hosts,
            Rate::from_gbps(10),
            TimeDelta::micros(5),
            &profile(),
            &profile(),
        );
        let a = (flow as usize) % n_hosts;
        let b = (a + 1) % n_hosts;
        let path = walk(&t, pkt(flow, a, b), t.hosts[a]);
        prop_assert_eq!(path.len(), 3);
        prop_assert_eq!(path[1], 0);
    }

    /// Dumbbell: cross-side pairs traverse both switches; same-side pairs
    /// stay local.
    #[test]
    fn dumbbell_routing(left in 1usize..6, right in 1usize..6, flow in 0u64..100) {
        let t = Topology::dumbbell(
            left,
            right,
            Rate::from_gbps(10),
            TimeDelta::micros(1),
            TimeDelta::micros(2),
            &profile(),
            &profile(),
        );
        // Cross-side.
        let path = walk(&t, pkt(flow, 0, left), t.hosts[0]);
        prop_assert_eq!(path.len(), 4);
        // Same-side (if possible).
        if left >= 2 {
            let path = walk(&t, pkt(flow, 0, 1), t.hosts[0]);
            prop_assert_eq!(path.len(), 3);
        }
    }
}

/// The paper's fabric has 8 ports everywhere and a 28 us base RTT.
#[test]
fn paper_fabric_shape() {
    let t = Topology::clos(ClosParams::default(), &profile(), &profile());
    assert_eq!(t.hosts.len(), 192);
    assert_eq!(t.base_rtt, TimeDelta::micros(28));
    for node in &t.nodes {
        if let Node::Switch(s) = node {
            assert_eq!(s.ports.len(), 8);
        }
    }
}
