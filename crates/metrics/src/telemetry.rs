//! Trace-derived telemetry: per-queue-depth and credit-waste time series.
//!
//! [`Telemetry`] folds a packet-lifecycle trace (a slice of
//! [`TraceEvent`]s from `flexpass-simtrace`) into fixed-width time bins:
//! the peak byte depth each queue reached per bin, and per-bin counts of
//! enqueues, ECN marks, drops, credits sent, credits wasted, and
//! retransmissions. The aggregate ratios back the paper's credit-waste
//! discussion (§4.3): what fraction of issued credits bought no data, and
//! what fraction of admitted packets were CE-marked.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use flexpass_simcore::time::TimeDelta;
use flexpass_simtrace::TraceEvent;

/// Binned counters and queue-depth series derived from one trace.
#[derive(Clone, Debug)]
pub struct Telemetry {
    bin: TimeDelta,
    /// Peak queue depth (bytes after enqueue/dequeue) per bin, by queue id.
    pub queue_peak_depth: BTreeMap<u64, Vec<u64>>,
    /// Packets admitted per bin.
    pub enqueues: Vec<u64>,
    /// Packets CE-marked per bin.
    pub ecn_marks: Vec<u64>,
    /// Packets dropped per bin (all causes, injected loss included).
    pub drops: Vec<u64>,
    /// Credits issued by receivers per bin.
    pub credits_sent: Vec<u64>,
    /// Credits that reached a sender with nothing to send, per bin.
    pub credits_wasted: Vec<u64>,
    /// Data retransmissions per bin.
    pub retransmits: Vec<u64>,
    /// Retransmission-timeout fires over the whole trace.
    pub rtos: u64,
    /// Endpoint timer cancellations over the whole trace.
    pub timer_cancels: u64,
    /// Events folded in (the slice length).
    pub events: u64,
    /// Wasted credits whose issue was observed in the trace (per flow,
    /// each waste is matched against a still-outstanding observed issue).
    matched_waste: u64,
    /// Wasted credits with no observed matching issue — evidence the
    /// trace ring evicted the issue side, i.e. the trace is truncated.
    unmatched_waste: u64,
}

fn bump(series: &mut Vec<u64>, bin: usize) {
    if bin >= series.len() {
        series.resize(bin + 1, 0);
    }
    series[bin] += 1;
}

impl Telemetry {
    /// Folds `events` into `bin`-wide time series. Events are taken in
    /// slice order; their timestamps decide the bin, so a ring-truncated
    /// log simply yields empty leading bins.
    pub fn from_events(events: &[TraceEvent], bin: TimeDelta) -> Self {
        assert!(bin.as_nanos() > 0, "telemetry bin width must be non-zero");
        let w = bin.as_nanos();
        let mut t = Telemetry {
            bin,
            queue_peak_depth: BTreeMap::new(),
            enqueues: Vec::new(),
            ecn_marks: Vec::new(),
            drops: Vec::new(),
            credits_sent: Vec::new(),
            credits_wasted: Vec::new(),
            retransmits: Vec::new(),
            rtos: 0,
            timer_cancels: 0,
            events: events.len() as u64,
            matched_waste: 0,
            unmatched_waste: 0,
        };
        // Outstanding observed credit issues per flow: a waste consumes
        // one; a waste arriving with none outstanding had its issue
        // evicted from the trace ring and must not count against the
        // observed issue total.
        let mut outstanding: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in events {
            let b = (ev.t_ns() / w) as usize;
            match ev {
                TraceEvent::Enqueue {
                    queue, bytes_after, ..
                } => {
                    bump(&mut t.enqueues, b);
                    t.note_depth(*queue, b, *bytes_after);
                }
                TraceEvent::Dequeue {
                    queue, bytes_after, ..
                } => t.note_depth(*queue, b, *bytes_after),
                TraceEvent::EcnMark { .. } => bump(&mut t.ecn_marks, b),
                TraceEvent::Drop { .. } => bump(&mut t.drops, b),
                TraceEvent::CreditSent { flow, .. } => {
                    bump(&mut t.credits_sent, b);
                    *outstanding.entry(*flow).or_insert(0) += 1;
                }
                TraceEvent::CreditWasted { flow, .. } => {
                    bump(&mut t.credits_wasted, b);
                    match outstanding.get_mut(flow) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            t.matched_waste += 1;
                        }
                        _ => t.unmatched_waste += 1,
                    }
                }
                TraceEvent::Retransmit { .. } => bump(&mut t.retransmits, b),
                TraceEvent::Rto { .. } => t.rtos += 1,
                TraceEvent::TimerCancel { .. } => t.timer_cancels += 1,
            }
        }
        t
    }

    fn note_depth(&mut self, queue: u64, bin: usize, bytes: u64) {
        let series = self.queue_peak_depth.entry(queue).or_default();
        if bin >= series.len() {
            series.resize(bin + 1, 0);
        }
        series[bin] = series[bin].max(bytes);
    }

    /// Bin width the series were folded with.
    pub fn bin(&self) -> TimeDelta {
        self.bin
    }

    /// Number of bins covered by the longest series.
    pub fn bins(&self) -> usize {
        self.queue_peak_depth
            .values()
            .map(Vec::len)
            .chain([
                self.enqueues.len(),
                self.ecn_marks.len(),
                self.drops.len(),
                self.credits_sent.len(),
                self.credits_wasted.len(),
                self.retransmits.len(),
            ])
            .max()
            .unwrap_or(0)
    }

    /// Fraction of issued credits that were wasted (0.0 when none were
    /// issued). Only wastes whose matching issue was observed count, so
    /// a ring-truncated trace (waste retained, issue evicted) can no
    /// longer push the ratio above 1.0; check [`Telemetry::truncated`]
    /// before trusting the figure on such a trace.
    pub fn credit_waste_fraction(&self) -> f64 {
        let sent: u64 = self.credits_sent.iter().sum();
        if sent == 0 {
            0.0
        } else {
            (self.matched_waste as f64 / sent as f64).min(1.0)
        }
    }

    /// True when the trace shows wasted credits whose issue was never
    /// observed — the ring evicted part of the issue window, so
    /// [`Telemetry::credit_waste_fraction`] undercounts waste.
    pub fn truncated(&self) -> bool {
        self.unmatched_waste > 0
    }

    /// Wasted credits with no observed matching issue (0 on a complete
    /// trace).
    pub fn unmatched_waste(&self) -> u64 {
        self.unmatched_waste
    }

    /// Fraction of admitted packets that were CE-marked (0.0 when no
    /// packets were admitted).
    pub fn mark_fraction(&self) -> f64 {
        let enq: u64 = self.enqueues.iter().sum();
        let marks: u64 = self.ecn_marks.iter().sum();
        if enq == 0 {
            0.0
        } else {
            marks as f64 / enq as f64
        }
    }

    /// Highest queue depth seen anywhere in the trace, bytes.
    pub fn peak_depth_bytes(&self) -> u64 {
        self.queue_peak_depth
            .values()
            .flat_map(|s| s.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// A one-line JSON summary, suitable for appending to a JSONL trace
    /// file (`"kind":"summary"` keeps it distinguishable from events).
    pub fn summary_json(&self) -> String {
        let sum = |s: &[u64]| s.iter().sum::<u64>();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"kind\":\"summary\",\"bin_ns\":{},\"bins\":{},\"events\":{},\
             \"queues\":{},\"peak_depth_bytes\":{},\"enqueues\":{},\
             \"ecn_marks\":{},\"drops\":{},\"credits_sent\":{},\
             \"credits_wasted\":{},\"retransmits\":{},\"rtos\":{},\
             \"timer_cancels\":{},\"mark_fraction\":{:.6},\
             \"credit_waste_fraction\":{:.6},\
             \"credit_waste_truncated\":{}}}",
            self.bin.as_nanos(),
            self.bins(),
            self.events,
            self.queue_peak_depth.len(),
            self.peak_depth_bytes(),
            sum(&self.enqueues),
            sum(&self.ecn_marks),
            sum(&self.drops),
            sum(&self.credits_sent),
            sum(&self.credits_wasted),
            sum(&self.retransmits),
            self.rtos,
            self.timer_cancels,
            self.mark_fraction(),
            self.credit_waste_fraction(),
            self.truncated(),
        );
        out
    }
}

#[cfg(test)]
// Fraction expectations are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use flexpass_simtrace::DropCause;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueue {
                t_ns: 100,
                queue: 0,
                flow: 1,
                seq: 0,
                bytes_after: 1538,
            },
            TraceEvent::EcnMark {
                t_ns: 150,
                queue: 0,
                flow: 1,
                seq: 1,
            },
            TraceEvent::Enqueue {
                t_ns: 200,
                queue: 0,
                flow: 1,
                seq: 1,
                bytes_after: 3076,
            },
            TraceEvent::Dequeue {
                t_ns: 1_200,
                queue: 0,
                flow: 1,
                seq: 0,
                bytes_after: 1538,
            },
            TraceEvent::Drop {
                t_ns: 1_300,
                node: 2,
                flow: 1,
                seq: 2,
                cause: DropCause::Buffer,
            },
            TraceEvent::CreditSent {
                t_ns: 1_400,
                flow: 3,
                idx: 0,
            },
            TraceEvent::CreditSent {
                t_ns: 2_400,
                flow: 3,
                idx: 1,
            },
            TraceEvent::CreditWasted {
                t_ns: 2_500,
                flow: 3,
            },
            TraceEvent::Retransmit {
                t_ns: 2_600,
                flow: 1,
                seq: 2,
            },
            TraceEvent::Rto {
                t_ns: 2_700,
                flow: 1,
                backoff: 1,
            },
            TraceEvent::TimerCancel {
                t_ns: 2_800,
                flow: 1,
                kind: 1,
            },
        ]
    }

    #[test]
    fn bins_counts_and_queue_peaks() {
        let t = Telemetry::from_events(&sample_events(), TimeDelta::micros(1));
        assert_eq!(t.bins(), 3);
        assert_eq!(t.enqueues, vec![2]);
        assert_eq!(t.ecn_marks, vec![1]);
        assert_eq!(t.drops, vec![0, 1]);
        assert_eq!(t.credits_sent, vec![0, 1, 1]);
        assert_eq!(t.credits_wasted, vec![0, 0, 1]);
        assert_eq!(t.retransmits, vec![0, 0, 1]);
        assert_eq!(t.rtos, 1);
        assert_eq!(t.timer_cancels, 1);
        // Bin 0 peak is the post-enqueue high-water, bin 1 the post-dequeue
        // residue.
        assert_eq!(t.queue_peak_depth[&0], vec![3076, 1538]);
        assert_eq!(t.peak_depth_bytes(), 3076);
    }

    #[test]
    fn fractions() {
        let t = Telemetry::from_events(&sample_events(), TimeDelta::micros(1));
        assert_eq!(t.credit_waste_fraction(), 0.5);
        assert!(!t.truncated());
        assert_eq!(t.unmatched_waste(), 0);
        assert_eq!(t.mark_fraction(), 0.5);
        let empty = Telemetry::from_events(&[], TimeDelta::micros(1));
        assert_eq!(empty.credit_waste_fraction(), 0.0);
        assert_eq!(empty.mark_fraction(), 0.0);
        assert_eq!(empty.bins(), 0);
    }

    /// Regression: a ring-truncated trace that kept wastes but lost their
    /// issues used to report a waste ratio above 1.0. Unmatched wastes
    /// must now be excluded (and flagged) instead.
    #[test]
    fn truncated_trace_waste_never_exceeds_one() {
        // One observed issue for flow 3, but three wastes: two of them
        // (flow 3's second, and flow 7's only one) lost their issues to
        // ring eviction.
        let events = vec![
            TraceEvent::CreditWasted { t_ns: 100, flow: 7 },
            TraceEvent::CreditSent {
                t_ns: 200,
                flow: 3,
                idx: 5,
            },
            TraceEvent::CreditWasted { t_ns: 300, flow: 3 },
            TraceEvent::CreditWasted { t_ns: 400, flow: 3 },
        ];
        let t = Telemetry::from_events(&events, TimeDelta::micros(1));
        assert_eq!(t.credits_sent.iter().sum::<u64>(), 1);
        assert_eq!(t.credits_wasted.iter().sum::<u64>(), 3);
        assert_eq!(t.credit_waste_fraction(), 1.0);
        assert!(t.truncated());
        assert_eq!(t.unmatched_waste(), 2);
        let s = t.summary_json();
        assert!(s.contains("\"credit_waste_fraction\":1.000000"));
        assert!(s.contains("\"credit_waste_truncated\":true"));
    }

    #[test]
    fn summary_is_one_json_line() {
        let t = Telemetry::from_events(&sample_events(), TimeDelta::micros(1));
        let s = t.summary_json();
        assert!(s.starts_with("{\"kind\":\"summary\""));
        assert!(s.ends_with('}'));
        assert!(!s.contains('\n'));
        assert!(s.contains("\"enqueues\":2"));
        assert!(s.contains("\"credits_sent\":2"));
        assert!(s.contains("\"credit_waste_fraction\":0.500000"));
        assert!(s.contains("\"credit_waste_truncated\":false"));
        assert!(s.contains("\"peak_depth_bytes\":3076"));
    }
}
