//! Measurement for the FlexPass reproduction: a [`Recorder`] implementing
//! the simulator's observer hooks, plus the derived statistics every figure
//! needs (FCT percentiles by size/tag, throughput time series per
//! transport and sub-flow, starvation time, queue occupancy, drop and
//! retransmission accounting), and a [`Telemetry`] aggregator turning
//! packet-lifecycle trace logs into per-queue-depth and credit-waste time
//! series.

pub mod recorder;
pub mod telemetry;

pub use recorder::{FctStats, FlowRecord, Recorder, SeriesKey};
pub use telemetry::Telemetry;
