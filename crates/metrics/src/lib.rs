//! Measurement for the FlexPass reproduction: a [`Recorder`] implementing
//! the simulator's observer hooks, plus the derived statistics every figure
//! needs (FCT percentiles by size/tag, throughput time series per
//! transport and sub-flow, starvation time, queue occupancy, drop and
//! retransmission accounting).

pub mod recorder;

pub use recorder::{FctStats, FlowRecord, Recorder, SeriesKey};
