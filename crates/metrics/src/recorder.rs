//! The measurement recorder.

use std::collections::BTreeMap;

use flexpass_simcore::stats::{bytes_to_gbps, FctSketch, Percentiles, TimeSeries};
use flexpass_simcore::time::{Time, TimeDelta};
use flexpass_simnet::endpoint::{AppEvent, TxStats};
use flexpass_simnet::packet::{FlowSpec, Packet, Payload, Subflow};
use flexpass_simnet::queue::DropReason;
use flexpass_simnet::sim::{NetObserver, NodeId};
use flexpass_simnet::switch::QueueSample;

/// One completed flow.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// Flow id.
    pub flow: u64,
    /// Application bytes.
    pub size: u64,
    /// Flow completion time in seconds (start to last byte delivered).
    pub fct: f64,
    /// Scheme tag (0 = legacy, 1 = upgraded by convention).
    pub tag: u32,
    /// Foreground (incast) flow.
    pub fg: bool,
    /// Peak out-of-order reassembly buffer at the receiver, bytes.
    pub reorder_peak: u64,
    /// Duplicate packets discarded at the receiver.
    pub dup_pkts: u64,
}

/// Key of a throughput time series: `(flow tag, sub-flow)`.
pub type SeriesKey = (u32, Subflow);

/// Key of a streaming FCT sketch: `(flow tag, size decade)`.
pub type SketchKey = (u32, u8);

/// Decimal size bucket of a flow: `floor(log10(size))`, 0 for sizes
/// under 10 bytes. The paper's small-flow cut (`size < 100 kB`) is
/// exactly `decade <= SMALL_DECADE_MAX`.
pub fn size_decade(size: u64) -> u8 {
    let mut d = 0u8;
    let mut s = size / 10;
    while s > 0 {
        d += 1;
        s /= 10;
    }
    d
}

/// Largest decade still inside the paper's small-flow cut (< 100 kB).
pub const SMALL_DECADE_MAX: u8 = 4;

/// Receiver saw the last byte (`FlowCompleted`).
const RX_DONE: u8 = 1;
/// Sender retired its state (`SenderDone`).
const TX_DONE: u8 = 2;
const BOTH_DONE: u8 = RX_DONE | TX_DONE;

/// Compact per-live-flow bookkeeping — only what the figure queries
/// need, not the whole [`FlowSpec`] (src/dst routing fields are the
/// simulator's business, not the recorder's).
#[derive(Clone, Copy, Debug)]
struct LiveFlow {
    size: u64,
    start: Time,
    tag: u32,
    fg: bool,
    /// `RX_DONE | TX_DONE` bits; in streaming mode the entry is dropped
    /// once both endpoints have retired the flow, keeping the map
    /// O(live flows).
    done: u8,
}

/// Derived FCT statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct FctStats {
    /// Number of flows.
    pub count: usize,
    /// Mean FCT, seconds.
    pub avg: f64,
    /// Median FCT, seconds.
    pub p50: f64,
    /// 99th percentile FCT, seconds.
    pub p99: f64,
    /// Maximum FCT, seconds.
    pub max: f64,
    /// Population standard deviation, seconds.
    pub stddev: f64,
}

/// A [`NetObserver`] recording everything the paper's figures need.
pub struct Recorder {
    live: BTreeMap<u64, LiveFlow>,
    /// Streaming mode: fold completions into [`FctSketch`]es and drop
    /// retired live entries instead of retaining [`FlowRecord`]s, so
    /// memory is O(live flows), not O(flows). Exact mode (the default)
    /// keeps the full per-flow record for the paper's figures.
    streaming: bool,
    /// Streaming mode: one bounded-memory sketch per (tag, size decade).
    sketches: BTreeMap<SketchKey, FctSketch>,
    /// Streaming mode: completions folded into `sketches`.
    streamed: u64,
    /// Completed flows (exact mode only; empty in streaming mode).
    pub flows: Vec<FlowRecord>,
    /// Sender stats summed per tag.
    pub tx_by_tag: BTreeMap<u32, TxStats>,
    /// Drops by reason.
    pub drops: BTreeMap<DropReason, u64>,
    /// Dropped red (reactive) packets at switches.
    pub red_drops: u64,
    throughput_bin: Option<TimeDelta>,
    series: BTreeMap<SeriesKey, TimeSeries>,
    /// Queue index to collect occupancy stats for (e.g. 1 = Q1).
    queue_watch: Option<usize>,
    /// Q-watch: total bytes samples.
    pub q_bytes: Percentiles,
    /// Q-watch: samples from moments the queue was non-empty (the paper's
    /// occupancy numbers describe busy bottleneck ports, not the idle
    /// fabric average).
    pub q_busy_bytes: Percentiles,
    /// Q-watch: red bytes samples.
    pub q_red_bytes: Percentiles,
    /// Q-watch: max bytes ever sampled.
    pub q_peak: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with FCT + drop accounting only.
    pub fn new() -> Self {
        Recorder {
            live: BTreeMap::new(),
            streaming: false,
            sketches: BTreeMap::new(),
            streamed: 0,
            flows: Vec::new(),
            tx_by_tag: BTreeMap::new(),
            drops: BTreeMap::new(),
            red_drops: 0,
            throughput_bin: None,
            series: BTreeMap::new(),
            queue_watch: None,
            q_bytes: Percentiles::new(),
            q_busy_bytes: Percentiles::new(),
            q_red_bytes: Percentiles::new(),
            q_peak: 0,
        }
    }

    /// Enables per-(tag, sub-flow) throughput time series with `bin` width.
    pub fn with_throughput(mut self, bin: TimeDelta) -> Self {
        self.throughput_bin = Some(bin);
        self
    }

    /// Enables occupancy statistics for switch queue index `q` (requires
    /// `Sim::enable_sampling`).
    pub fn with_queue_watch(mut self, q: usize) -> Self {
        self.queue_watch = Some(q);
        self
    }

    /// Switches to streaming mode: completions fold into per-(tag, size
    /// decade) [`FctSketch`]es and per-flow state is dropped once both
    /// endpoints retire the flow, so recorder memory stays O(live flows)
    /// at any scale. Quantiles then carry the sketch's documented
    /// [`FctSketch::RELATIVE_ERROR`]; count/mean/min/max stay exact.
    /// Per-flow records ([`Recorder::flows`], [`Recorder::fct_stats`])
    /// are unavailable in this mode.
    pub fn with_streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// True when this recorder folds completions into sketches.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Number of retained per-flow FCT samples (0 in streaming mode —
    /// the memory-regression contract).
    pub fn retained_samples(&self) -> usize {
        self.flows.len()
    }

    /// Number of flows currently tracked as live (started but not yet
    /// fully retired). In streaming mode this is the recorder's only
    /// per-flow state.
    pub fn live_flows(&self) -> usize {
        self.live.len()
    }

    /// The streaming sketches, keyed by (tag, size decade). Empty unless
    /// streaming mode recorded completions.
    pub fn sketches(&self) -> &BTreeMap<SketchKey, FctSketch> {
        &self.sketches
    }

    /// FCT statistics over flows matching `filt`.
    pub fn fct_stats(&self, filt: impl Fn(&FlowRecord) -> bool) -> FctStats {
        let mut p = Percentiles::new();
        for r in self.flows.iter().filter(|r| filt(r)) {
            p.push(r.fct);
        }
        FctStats {
            count: p.count(),
            avg: p.mean(),
            p50: p.p50(),
            p99: p.p99(),
            max: p.max(),
            stddev: p.stddev(),
        }
    }

    /// Pools the streaming sketches matching `tag` (and optionally only
    /// small-flow decades) into one. Bin counts add exactly, so pooled
    /// quantiles carry the same error bound as a single sketch.
    fn merged_sketch(&self, tag: Option<u32>, small_only: bool) -> FctSketch {
        let mut out = FctSketch::new();
        for ((t, decade), s) in &self.sketches {
            if tag.is_some_and(|want| *t != want) {
                continue;
            }
            if small_only && *decade > SMALL_DECADE_MAX {
                continue;
            }
            out.merge(s);
        }
        out
    }

    /// FCT statistics from the streaming sketches: count/avg/max/stddev
    /// exact, p50/p99 within [`FctSketch::RELATIVE_ERROR`]. All zeros
    /// when nothing matched (or in exact mode, where the sketches are
    /// never fed).
    pub fn streaming_stats(&self, tag: Option<u32>, small_only: bool) -> FctStats {
        let s = self.merged_sketch(tag, small_only);
        FctStats {
            // lint:allow(raw-cast): sample counts fit usize on 64-bit.
            count: s.count() as usize,
            avg: s.mean(),
            p50: s.p50(),
            p99: s.p99(),
            max: s.max(),
            stddev: s.stddev(),
        }
    }

    /// The paper's headline tail metric: p99 FCT of flows under 100 kB.
    /// In streaming mode, answered from the sketches (within
    /// [`FctSketch::RELATIVE_ERROR`]).
    pub fn p99_small(&self, tag: Option<u32>) -> f64 {
        if self.streaming {
            return self.streaming_stats(tag, true).p99;
        }
        self.fct_stats(|r| r.size < 100_000 && tag.is_none_or(|t| r.tag == t))
            .p99
    }

    /// Overall average FCT (all sizes), optionally by tag. Exact in both
    /// modes (sketches keep the exact mean).
    pub fn avg_fct(&self, tag: Option<u32>) -> f64 {
        if self.streaming {
            return self.streaming_stats(tag, false).avg;
        }
        self.fct_stats(|r| tag.is_none_or(|t| r.tag == t)).avg
    }

    /// Standard deviation of small-flow FCTs by tag (Figure 13). Exact
    /// in both modes.
    pub fn stddev_small(&self, tag: Option<u32>) -> f64 {
        if self.streaming {
            return self.streaming_stats(tag, true).stddev;
        }
        self.fct_stats(|r| r.size < 100_000 && tag.is_none_or(|t| r.tag == t))
            .stddev
    }

    /// A throughput series, if recorded.
    pub fn series(&self, key: SeriesKey) -> Option<&TimeSeries> {
        self.series.get(&key)
    }

    /// All recorded series keys.
    pub fn series_keys(&self) -> Vec<SeriesKey> {
        let mut k: Vec<SeriesKey> = self.series.keys().copied().collect();
        k.sort_by_key(|(t, s)| (*t, *s as u8));
        k
    }

    /// Aggregate throughput in Gbps per bin for a tag (summing sub-flows).
    pub fn throughput_gbps(&self, tag: u32) -> Vec<f64> {
        let bin = match self.throughput_bin {
            Some(b) => b,
            None => return Vec::new(),
        };
        let mut out: Vec<f64> = Vec::new();
        for ((t, _), s) in &self.series {
            if *t != tag {
                continue;
            }
            for (i, &v) in s.bins().iter().enumerate() {
                if i >= out.len() {
                    out.resize(i + 1, 0.0);
                }
                out[i] += bytes_to_gbps(v, bin);
            }
        }
        out
    }

    /// Fraction of time in `[from, to)` where the tag's aggregate
    /// throughput is below `frac` of `capacity_gbps` — the paper's
    /// starvation-time metric (Figure 9c: threshold 20 %).
    ///
    /// Each bin contributes in proportion to its overlap with the window,
    /// so a window that ends mid-bin weighs that bin by the covered
    /// fraction instead of counting it as a full bin. A window with no
    /// overlap with the recorded series yields 0.0.
    pub fn starvation_fraction(
        &self,
        tag: u32,
        capacity_gbps: f64,
        frac: f64,
        from: Time,
        to: Time,
    ) -> f64 {
        debug_assert!(
            from <= to,
            "starvation window is inverted: {from:?} > {to:?}"
        );
        let bin = match self.throughput_bin {
            Some(b) => b,
            None => return 0.0,
        };
        let tp = self.throughput_gbps(tag);
        let w = bin.as_nanos();
        let lo = (from.as_nanos() / w) as usize;
        let hi = (to.as_nanos().div_ceil(w) as usize).min(tp.len());
        let mut total = 0.0f64;
        let mut below = 0.0f64;
        for (i, &v) in tp.iter().enumerate().take(hi).skip(lo) {
            let bin_start = i as u64 * w;
            let bin_end = bin_start + w;
            let o_start = bin_start.max(from.as_nanos());
            let o_end = bin_end.min(to.as_nanos());
            if o_end <= o_start {
                continue;
            }
            let weight = (o_end - o_start) as f64;
            total += weight;
            if v < frac * capacity_gbps {
                below += weight;
            }
        }
        if total <= 0.0 {
            0.0
        } else {
            below / total
        }
    }

    /// Total sender timeouts across tags.
    pub fn total_timeouts(&self) -> u64 {
        self.tx_by_tag.values().map(|s| s.timeouts).sum()
    }

    /// Proactive-retransmission volume as a fraction of all data bytes
    /// (§4.2: "only 0.7 % of redundant retransmission in traffic volume").
    pub fn redundancy_fraction(&self) -> f64 {
        let sent: u64 = self.tx_by_tag.values().map(|s| s.data_bytes).sum();
        let red: u64 = self.tx_by_tag.values().map(|s| s.redundant_bytes).sum();
        if sent == 0 {
            0.0
        } else {
            red as f64 / sent as f64
        }
    }

    /// Number of flows recorded (retained records plus streamed
    /// completions).
    pub fn completed(&self) -> usize {
        // lint:allow(raw-cast): completion counts fit usize on 64-bit.
        self.flows.len() + self.streamed as usize
    }

    /// An empty recorder with this one's configuration (throughput bin,
    /// queue watch, streaming mode). The parallel engine hands one to
    /// each partition domain, then folds them back with
    /// [`Recorder::absorb`].
    pub fn fresh_like(&self) -> Recorder {
        let mut r = Recorder::new();
        r.throughput_bin = self.throughput_bin;
        r.queue_watch = self.queue_watch;
        r.streaming = self.streaming;
        r
    }

    /// Folds a domain recorder into this one. Call in ascending domain
    /// order so merged flow lists are deterministic. A flow split across a
    /// domain cut starts in both domains; the live map dedups it (both
    /// observations carry the same size/start/tag) and ORs the done bits
    /// so a flow that completed RX-side in one domain and TX-side in the
    /// other is recognized as retired. Every other aggregate is strictly
    /// per-domain and sums; sketch merges are bit-deterministic in domain
    /// order.
    pub fn absorb(&mut self, other: Recorder) {
        for (id, lf) in other.live {
            match self.live.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().done |= lf.done;
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(lf);
                }
            }
        }
        if self.streaming {
            self.live.retain(|_, lf| lf.done != BOTH_DONE);
        }
        for (key, s) in other.sketches {
            match self.sketches.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&s),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s);
                }
            }
        }
        self.streamed += other.streamed;
        self.flows.extend(other.flows);
        for (tag, s) in other.tx_by_tag {
            let agg = self.tx_by_tag.entry(tag).or_default();
            agg.data_pkts += s.data_pkts;
            agg.data_bytes += s.data_bytes;
            agg.retx_pkts += s.retx_pkts;
            agg.proactive_retx_pkts += s.proactive_retx_pkts;
            agg.redundant_bytes += s.redundant_bytes;
            agg.timeouts += s.timeouts;
            agg.credits_received += s.credits_received;
            agg.credits_wasted += s.credits_wasted;
        }
        for (reason, n) in other.drops {
            *self.drops.entry(reason).or_insert(0) += n;
        }
        self.red_drops += other.red_drops;
        for (key, s) in other.series {
            match self.series.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&s),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s);
                }
            }
        }
        self.q_bytes.merge(&other.q_bytes);
        self.q_busy_bytes.merge(&other.q_busy_bytes);
        self.q_red_bytes.merge(&other.q_red_bytes);
        self.q_peak = self.q_peak.max(other.q_peak);
    }
}

impl NetObserver for Recorder {
    fn on_flow_start(&mut self, spec: &FlowSpec, now: Time) {
        self.live.insert(
            spec.id,
            LiveFlow {
                size: spec.size.get(),
                start: now,
                tag: spec.tag,
                fg: spec.fg,
                done: 0,
            },
        );
    }

    fn on_app_event(&mut self, ev: &AppEvent, now: Time) {
        match ev {
            AppEvent::FlowCompleted { flow, stats } => {
                if let Some(lf) = self.live.get_mut(flow) {
                    let fct = now.saturating_since(lf.start).as_secs_f64();
                    if self.streaming {
                        let (tag, size) = (lf.tag, lf.size);
                        lf.done |= RX_DONE;
                        if lf.done == BOTH_DONE {
                            self.live.remove(flow);
                        }
                        self.sketches
                            .entry((tag, size_decade(size)))
                            .or_default()
                            .push(fct);
                        self.streamed += 1;
                    } else {
                        self.flows.push(FlowRecord {
                            flow: *flow,
                            size: lf.size,
                            fct,
                            tag: lf.tag,
                            fg: lf.fg,
                            reorder_peak: stats.reorder_peak_bytes,
                            dup_pkts: stats.dup_pkts,
                        });
                    }
                }
            }
            AppEvent::SenderDone { flow, stats } => {
                let tag = self.live.get(flow).map_or(0, |lf| lf.tag);
                let agg = self.tx_by_tag.entry(tag).or_default();
                agg.data_pkts += stats.data_pkts;
                agg.data_bytes += stats.data_bytes;
                agg.retx_pkts += stats.retx_pkts;
                agg.proactive_retx_pkts += stats.proactive_retx_pkts;
                agg.redundant_bytes += stats.redundant_bytes;
                agg.timeouts += stats.timeouts;
                agg.credits_received += stats.credits_received;
                agg.credits_wasted += stats.credits_wasted;
                if self.streaming {
                    if let Some(lf) = self.live.get_mut(flow) {
                        lf.done |= TX_DONE;
                        if lf.done == BOTH_DONE {
                            self.live.remove(flow);
                        }
                    }
                }
            }
        }
    }

    fn on_delivered(&mut self, pkt: &Packet, now: Time) {
        if let Some(bin) = self.throughput_bin {
            if let Payload::Data(d) = pkt.payload {
                let tag = self.live.get(&pkt.flow).map_or(0, |lf| lf.tag);
                self.series
                    .entry((tag, d.sub))
                    .or_insert_with(|| TimeSeries::new(bin))
                    .add(now, d.payload.as_f64());
            }
        }
    }

    fn on_drop(&mut self, pkt: &Packet, reason: DropReason, _node: NodeId, _now: Time) {
        *self.drops.entry(reason).or_insert(0) += 1;
        if reason == DropReason::SelectiveRed && pkt.is_data() {
            self.red_drops += 1;
        }
    }

    fn on_queue_sample(&mut self, _node: NodeId, _port: usize, s: &QueueSample, _now: Time) {
        if let Some(q) = self.queue_watch {
            if q < s.bytes.len() {
                self.q_bytes.push(s.bytes[q].as_f64());
                if !s.bytes[q].is_zero() {
                    self.q_busy_bytes.push(s.bytes[q].as_f64());
                }
                self.q_red_bytes.push(s.red_bytes[q].as_f64());
                self.q_peak = self.q_peak.max(s.bytes[q].get());
            }
        }
    }
}

#[cfg(test)]
// Test expectations compare floats that are exact by construction.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use flexpass_simcore::units::{Bytes, WireBytes};
    use flexpass_simnet::endpoint::RxStats;

    fn spec(id: u64, size: u64, tag: u32) -> FlowSpec {
        FlowSpec {
            id,
            src: 0,
            dst: 1,
            size: Bytes::new(size),
            start: Time::ZERO,
            tag,
            fg: false,
        }
    }

    fn complete(r: &mut Recorder, id: u64, size: u64, tag: u32, fct_us: u64) {
        r.on_flow_start(&spec(id, size, tag), Time::ZERO);
        r.on_app_event(
            &AppEvent::FlowCompleted {
                flow: id,
                stats: RxStats::default(),
            },
            Time::from_micros(fct_us),
        );
    }

    /// A recorder crosses threads in the parallel sweep: it is built on the
    /// orchestrating thread, moved into a worker with the simulation, and
    /// the finished point comes back the same way. Compile-time check.
    #[test]
    fn recorder_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Recorder>();
        assert_send::<FlowRecord>();
    }

    #[test]
    fn fct_stats_by_size_and_tag() {
        let mut r = Recorder::new();
        complete(&mut r, 1, 50_000, 0, 100);
        complete(&mut r, 2, 50_000, 1, 200);
        complete(&mut r, 3, 5_000_000, 0, 10_000);
        assert_eq!(r.completed(), 3);
        let small = r.fct_stats(|f| f.size < 100_000);
        assert_eq!(small.count, 2);
        assert!((small.avg - 150e-6).abs() < 1e-12);
        assert!((r.p99_small(Some(1)) - 200e-6).abs() < 1e-12);
        assert!((r.avg_fct(None) - (100.0 + 200.0 + 10_000.0) / 3.0 * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn tx_stats_aggregate_by_tag() {
        let mut r = Recorder::new();
        r.on_flow_start(&spec(1, 1000, 1), Time::ZERO);
        let stats = TxStats {
            data_pkts: 10,
            data_bytes: 10_000,
            redundant_bytes: 500,
            timeouts: 1,
            ..TxStats::default()
        };
        r.on_app_event(&AppEvent::SenderDone { flow: 1, stats }, Time::ZERO);
        r.on_app_event(&AppEvent::SenderDone { flow: 1, stats }, Time::ZERO);
        assert_eq!(r.tx_by_tag[&1].data_pkts, 20);
        assert_eq!(r.total_timeouts(), 2);
        assert!((r.redundancy_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn throughput_series_and_starvation() {
        use flexpass_simnet::consts::data_wire_bytes;
        use flexpass_simnet::packet::{DataInfo, Payload, TrafficClass};

        let mut r = Recorder::new().with_throughput(TimeDelta::millis(1));
        r.on_flow_start(&spec(1, 1_000_000, 1), Time::ZERO);
        let pkt = Packet::new(
            1,
            0,
            1,
            data_wire_bytes(Bytes::new(1460)),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Proactive,
                payload: Bytes::new(1460),
                retx: false,
            }),
        );
        // 1 Gbps in bin 0: 1 ms * 1 Gbps / 8 = 125 kB.
        for _ in 0..86 {
            r.on_delivered(&pkt, Time::from_micros(500));
        }
        let tp = r.throughput_gbps(1);
        assert!((tp[0] - 1.0).abs() < 0.02, "tp {tp:?}");
        // Starvation below 20 % of 10 Gbps: 1 Gbps < 2 Gbps -> 100 %.
        let f = r.starvation_fraction(1, 10.0, 0.2, Time::ZERO, Time::from_millis(1));
        assert_eq!(f, 1.0);
        // And not starved against a 1 Gbps capacity at 20 %.
        let f = r.starvation_fraction(1, 1.0, 0.2, Time::ZERO, Time::from_millis(1));
        assert_eq!(f, 0.0);
        assert_eq!(r.series_keys(), vec![(1, Subflow::Proactive)]);
    }

    /// Regression: a window ending mid-bin must weight the trailing bin by
    /// its covered fraction, and windows outside the series must not panic
    /// or report starvation.
    #[test]
    fn starvation_weights_partial_bins_and_clamps_window() {
        use flexpass_simnet::consts::DATA_WIRE;
        use flexpass_simnet::packet::{DataInfo, Payload, TrafficClass};

        let mut r = Recorder::new().with_throughput(TimeDelta::millis(1));
        r.on_flow_start(&spec(1, 2_000_000, 1), Time::ZERO);
        // The series sums `payload`; the wire size is irrelevant here, so a
        // whole bin's worth of bytes can ride in one oversized delivery.
        let deliver = |r: &mut Recorder, bytes: u64, at_us: u64| {
            let pkt = Packet::new(
                1,
                0,
                1,
                DATA_WIRE,
                TrafficClass::NewData,
                Payload::Data(DataInfo {
                    flow_seq: 0,
                    sub_seq: 0,
                    sub: Subflow::Proactive,
                    payload: Bytes::new(bytes),
                    retx: false,
                }),
            );
            r.on_delivered(&pkt, Time::from_micros(at_us));
        };
        // Bin 0: 10 Gbps (1.25 MB / ms). Bin 1: 2 Gbps (250 kB / ms).
        deliver(&mut r, 1_250_000, 500);
        deliver(&mut r, 250_000, 1_500);

        // Window [0, 1.5 ms), threshold 5 Gbps: bin 0 (full weight) is
        // above, bin 1 contributes only half a bin below -> 0.5 / 1.5.
        let f = r.starvation_fraction(1, 10.0, 0.5, Time::ZERO, Time::from_micros(1_500));
        assert!(
            (f - 0.5 / 1.5).abs() < 1e-12,
            "partial bin over-counted: {f}"
        );

        // Empty window.
        let f = r.starvation_fraction(1, 10.0, 0.5, Time::from_micros(700), Time::from_micros(700));
        assert_eq!(f, 0.0);

        // Window entirely past the recorded series.
        let f = r.starvation_fraction(1, 10.0, 0.5, Time::from_millis(10), Time::from_millis(12));
        assert_eq!(f, 0.0);

        // Unknown tag: no series at all.
        let f = r.starvation_fraction(7, 10.0, 0.5, Time::ZERO, Time::from_millis(1));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn queue_watch_percentiles() {
        let mut r = Recorder::new().with_queue_watch(1);
        for i in 0..100u64 {
            let s = QueueSample {
                bytes: vec![WireBytes::ZERO, WireBytes::new(i * 1000), WireBytes::ZERO],
                red_bytes: vec![WireBytes::ZERO, WireBytes::new(i * 400), WireBytes::ZERO],
            };
            r.on_queue_sample(0, 0, &s, Time::from_micros(i));
        }
        assert_eq!(r.q_peak, 99_000);
        assert!((r.q_bytes.quantile(0.9) - 89_000.0).abs() < 1e-9);
        assert!(r.q_red_bytes.mean() > 0.0);
        // Busy samples exclude the single zero-occupancy sample.
        assert_eq!(r.q_busy_bytes.count(), 99);
    }

    #[test]
    fn absorb_merges_domains_and_dedups_split_flow_specs() {
        use flexpass_simnet::consts::data_wire_bytes;
        use flexpass_simnet::packet::{DataInfo, Payload, TrafficClass};

        let parent = Recorder::new().with_throughput(TimeDelta::millis(1));
        let mut d0 = parent.fresh_like();
        let mut d1 = parent.fresh_like();

        // Flow 1 crosses the cut: its FlowStart fires in both domains,
        // it completes (receiver side) only in d1.
        d0.on_flow_start(&spec(1, 50_000, 1), Time::ZERO);
        d1.on_flow_start(&spec(1, 50_000, 1), Time::ZERO);
        d1.on_app_event(
            &AppEvent::FlowCompleted {
                flow: 1,
                stats: RxStats::default(),
            },
            Time::from_micros(120),
        );
        // Flow 2 is intra-domain in d0.
        complete(&mut d0, 2, 80_000, 0, 300);
        // Deliveries land in different domains; both series must sum.
        let pkt = Packet::new(
            1,
            0,
            1,
            data_wire_bytes(Bytes::new(1460)),
            TrafficClass::NewData,
            Payload::Data(DataInfo {
                flow_seq: 0,
                sub_seq: 0,
                sub: Subflow::Proactive,
                payload: Bytes::new(1460),
                retx: false,
            }),
        );
        d0.on_delivered(&pkt, Time::from_micros(500));
        d1.on_delivered(&pkt, Time::from_micros(500));

        let mut merged = parent;
        merged.absorb(d0);
        merged.absorb(d1);
        assert_eq!(merged.completed(), 2);
        assert_eq!(merged.fct_stats(|f| f.flow == 1).count, 1);
        assert!((merged.fct_stats(|f| f.flow == 1).avg - 120e-6).abs() < 1e-12);
        // Both deliveries counted once each: 2 * 1460 B in bin 0.
        let tp = merged.throughput_gbps(1);
        assert!((tp[0] - 2.0 * 1460.0 * 8.0 / 1e6).abs() < 1e-9, "tp {tp:?}");
    }

    #[test]
    fn size_decade_buckets_match_small_flow_cut() {
        assert_eq!(size_decade(0), 0);
        assert_eq!(size_decade(9), 0);
        assert_eq!(size_decade(10), 1);
        assert_eq!(size_decade(99_999), SMALL_DECADE_MAX);
        assert_eq!(size_decade(100_000), SMALL_DECADE_MAX + 1);
        assert_eq!(size_decade(u64::MAX), 19);
    }

    /// Fully retires a flow: start, receiver completion at `fct_us`, and
    /// sender retirement (what every transport emits in practice).
    fn retire(r: &mut Recorder, id: u64, size: u64, tag: u32, fct_us: u64) {
        complete(r, id, size, tag, fct_us);
        r.on_app_event(
            &AppEvent::SenderDone {
                flow: id,
                stats: TxStats::default(),
            },
            Time::from_micros(fct_us),
        );
    }

    /// Deterministic pseudo-random (size, fct_us) pairs.
    fn synth_flows(n: u64) -> Vec<(u64, u64)> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let size = 100 + state % 10_000_000;
                let fct_us = 20 + (state >> 32) % 200_000;
                (size, fct_us)
            })
            .collect()
    }

    #[test]
    fn streaming_matches_exact_within_sketch_error() {
        let mut exact = Recorder::new();
        let mut stream = Recorder::new().with_streaming();
        for (i, &(size, fct_us)) in synth_flows(5_000).iter().enumerate() {
            let tag = (i % 2) as u32;
            retire(&mut exact, i as u64, size, tag, fct_us);
            retire(&mut stream, i as u64, size, tag, fct_us);
        }
        assert_eq!(stream.completed(), exact.completed());
        for tag in [None, Some(0), Some(1)] {
            // Count/mean/stddev are carried exactly by the sketches.
            let es = exact.fct_stats(|r| r.size < 100_000 && tag.is_none_or(|t| r.tag == t));
            let ss = stream.streaming_stats(tag, true);
            assert_eq!(ss.count, es.count);
            assert!((stream.avg_fct(tag) - exact.avg_fct(tag)).abs() < 1e-12);
            assert!((stream.stddev_small(tag) - exact.stddev_small(tag)).abs() < 1e-12);
            assert!((ss.max - es.max).abs() < 1e-12);
            // Quantiles within the documented sketch error.
            let (sp, ep) = (stream.p99_small(tag), exact.p99_small(tag));
            assert!(
                (sp - ep).abs() <= FctSketch::RELATIVE_ERROR * ep,
                "tag {tag:?}: streaming p99 {sp} vs exact {ep}"
            );
            let (sp, ep) = (ss.p50, es.p50);
            assert!(
                (sp - ep).abs() <= FctSketch::RELATIVE_ERROR * ep,
                "tag {tag:?}: streaming p50 {sp} vs exact {ep}"
            );
        }
    }

    /// The memory-regression contract: a streaming recorder retains zero
    /// per-flow samples and its live map empties as flows retire.
    #[test]
    fn streaming_recorder_retains_no_flow_state() {
        let mut r = Recorder::new().with_streaming();
        for (i, &(size, fct_us)) in synth_flows(1_000).iter().enumerate() {
            retire(&mut r, i as u64, size, 0, fct_us);
        }
        assert_eq!(r.completed(), 1_000);
        assert_eq!(r.retained_samples(), 0);
        assert_eq!(r.live_flows(), 0);
        // Exact mode keeps everything — the figures' contract.
        let mut e = Recorder::new();
        for (i, &(size, fct_us)) in synth_flows(100).iter().enumerate() {
            retire(&mut e, i as u64, size, 0, fct_us);
        }
        assert_eq!(e.retained_samples(), 100);
        assert_eq!(e.live_flows(), 100);
    }

    /// A flow split across a partition cut completes RX-side in one
    /// domain and TX-side in the other; absorbing both must OR the done
    /// bits and drop the entry, and repeated domain-order merges must be
    /// bit-deterministic.
    #[test]
    fn streaming_absorb_drops_split_flows_and_is_deterministic() {
        let parent = Recorder::new().with_streaming();
        let build_domains = || {
            let mut d0 = parent.fresh_like();
            let mut d1 = parent.fresh_like();
            assert!(d0.is_streaming());
            // Flow 1 crosses the cut: starts in both, completes RX-side
            // in d1, retires TX-side in d0.
            d0.on_flow_start(&spec(1, 50_000, 1), Time::ZERO);
            d1.on_flow_start(&spec(1, 50_000, 1), Time::ZERO);
            d1.on_app_event(
                &AppEvent::FlowCompleted {
                    flow: 1,
                    stats: RxStats::default(),
                },
                Time::from_micros(120),
            );
            d0.on_app_event(
                &AppEvent::SenderDone {
                    flow: 1,
                    stats: TxStats::default(),
                },
                Time::from_micros(120),
            );
            // Plus intra-domain traffic on both sides.
            for (i, &(size, fct_us)) in synth_flows(200).iter().enumerate() {
                retire(
                    if i % 2 == 0 { &mut d0 } else { &mut d1 },
                    10 + i as u64,
                    size,
                    1,
                    fct_us,
                );
            }
            (d0, d1)
        };
        let merge = || {
            let mut m = parent.fresh_like();
            let (d0, d1) = build_domains();
            m.absorb(d0);
            m.absorb(d1);
            m
        };
        let a = merge();
        let b = merge();
        assert_eq!(a.completed(), 201);
        assert_eq!(a.live_flows(), 0, "split flow not dropped after absorb");
        assert_eq!(a.retained_samples(), 0);
        // Bit-identical across repeated merges.
        assert_eq!(a.p99_small(Some(1)), b.p99_small(Some(1)));
        assert_eq!(a.avg_fct(Some(1)), b.avg_fct(Some(1)));
        let qa: Vec<f64> = a.sketches().values().map(|s| s.quantile(0.9)).collect();
        let qb: Vec<f64> = b.sketches().values().map(|s| s.quantile(0.9)).collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn drops_accounted_by_reason() {
        use flexpass_simnet::consts::CTRL_WIRE;
        use flexpass_simnet::packet::{CreditInfo, Payload, TrafficClass};
        let mut r = Recorder::new();
        let credit = Packet::new(
            1,
            0,
            1,
            CTRL_WIRE,
            TrafficClass::Credit,
            Payload::Credit(CreditInfo { idx: 0 }),
        );
        r.on_drop(&credit, DropReason::QueueCap, 0, Time::ZERO);
        r.on_drop(&credit, DropReason::QueueCap, 0, Time::ZERO);
        assert_eq!(r.drops[&DropReason::QueueCap], 2);
        assert_eq!(r.red_drops, 0);
    }
}
