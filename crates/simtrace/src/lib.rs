//! Packet-lifecycle tracing for the FlexPass simulator.
//!
//! A thread-local, install/finish tracer in the style of
//! `flexpass-simaudit`: the simulation crates call tiny hook functions at
//! every interesting datapath transition (enqueue, dequeue, ECN mark, drop,
//! credit send/waste, retransmit, RTO, timer cancel), and when a tracer is
//! installed the events land in a bounded ring buffer, newest-wins. When no
//! tracer is installed every hook is a thread-local load and a branch, so
//! traced and untraced runs execute the identical simulation — tracing is
//! observation-only and never feeds back into simulation state.
//!
//! Events serialize to JSON Lines via a hand-rolled codec (the workspace has
//! no serde); [`TraceEvent::parse_json_line`] round-trips every variant.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;

/// Default ring-buffer capacity, in events.
pub const DEFAULT_CAPACITY: usize = 262_144;

/// The kind of a trace event, used for filtering and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A packet was admitted to a queue.
    Enqueue,
    /// A packet left a queue for the wire.
    Dequeue,
    /// A packet was ECN-marked on admission.
    EcnMark,
    /// A packet was dropped (congestion, buffer, or injected loss).
    Drop,
    /// A receiver sent a credit packet.
    CreditSent,
    /// A credit reached a sender with no data to spend it on.
    CreditWasted,
    /// A sender retransmitted a data packet.
    Retransmit,
    /// A sender's retransmission timer fired.
    Rto,
    /// An armed endpoint timer was cancelled before firing.
    TimerCancel,
}

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; 9] = [
        EventKind::Enqueue,
        EventKind::Dequeue,
        EventKind::EcnMark,
        EventKind::Drop,
        EventKind::CreditSent,
        EventKind::CreditWasted,
        EventKind::Retransmit,
        EventKind::Rto,
        EventKind::TimerCancel,
    ];

    /// Stable wire name (used in JSONL and `--trace=` filters).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::EcnMark => "ecn-mark",
            EventKind::Drop => "drop",
            EventKind::CreditSent => "credit-sent",
            EventKind::CreditWasted => "credit-wasted",
            EventKind::Retransmit => "retransmit",
            EventKind::Rto => "rto",
            EventKind::TimerCancel => "timer-cancel",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        EventKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// Per-queue static capacity exceeded.
    QueueCap,
    /// Shared-buffer admission refused the packet.
    Buffer,
    /// Selective dropping of red (reactive-class) packets.
    SelectiveRed,
    /// Non-congestion loss injected by `Sim::inject_loss`.
    InjectedLoss,
}

impl DropCause {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::QueueCap => "queue-cap",
            DropCause::Buffer => "buffer",
            DropCause::SelectiveRed => "selective-red",
            DropCause::InjectedLoss => "injected-loss",
        }
    }

    /// Inverse of [`DropCause::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        [
            DropCause::QueueCap,
            DropCause::Buffer,
            DropCause::SelectiveRed,
            DropCause::InjectedLoss,
        ]
        .into_iter()
        .find(|c| c.name() == s)
    }
}

/// Identifies one traced queue, allocated in creation order per run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueueId(pub u64);

/// One timestamped datapath event. `seq` is the per-flow data sequence, or
/// `-1` for control packets (ACKs, credits) that have none.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Packet admitted; `bytes_after` is the queue depth including it.
    Enqueue {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Creation-order queue id.
        queue: u64,
        /// Flow id.
        flow: u64,
        /// Per-flow data sequence, `-1` for control packets.
        seq: i64,
        /// Queue depth after admission, wire bytes.
        bytes_after: u64,
    },
    /// Packet left the queue; `bytes_after` is the remaining depth.
    Dequeue {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Creation-order queue id.
        queue: u64,
        /// Flow id.
        flow: u64,
        /// Per-flow data sequence, `-1` for control packets.
        seq: i64,
        /// Queue depth after removal, wire bytes.
        bytes_after: u64,
    },
    /// Packet ECN-marked on admission.
    EcnMark {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Creation-order queue id.
        queue: u64,
        /// Flow id.
        flow: u64,
        /// Per-flow data sequence, `-1` for control packets.
        seq: i64,
    },
    /// Packet dropped at a node.
    Drop {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Topology node id of the drop site.
        node: u64,
        /// Flow id.
        flow: u64,
        /// Per-flow data sequence, `-1` for control packets.
        seq: i64,
        /// Drop cause.
        cause: DropCause,
    },
    /// Receiver sent credit `idx` for a flow.
    CreditSent {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Credit index within the flow.
        idx: u64,
    },
    /// A credit arrived at a sender with nothing to send.
    CreditWasted {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// Sender retransmitted data sequence `seq`.
    Retransmit {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Retransmitted per-flow data sequence.
        seq: i64,
    },
    /// Sender retransmission timeout fired.
    Rto {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Exponential backoff level at the fire.
        backoff: u32,
    },
    /// An armed endpoint timer was cancelled.
    TimerCancel {
        /// Virtual time, nanoseconds.
        t_ns: u64,
        /// Flow id (high bits of the timer token).
        flow: u64,
        /// Transport-private timer kind (low bits of the token).
        kind: u16,
    },
}

impl TraceEvent {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::Enqueue { .. } => EventKind::Enqueue,
            TraceEvent::Dequeue { .. } => EventKind::Dequeue,
            TraceEvent::EcnMark { .. } => EventKind::EcnMark,
            TraceEvent::Drop { .. } => EventKind::Drop,
            TraceEvent::CreditSent { .. } => EventKind::CreditSent,
            TraceEvent::CreditWasted { .. } => EventKind::CreditWasted,
            TraceEvent::Retransmit { .. } => EventKind::Retransmit,
            TraceEvent::Rto { .. } => EventKind::Rto,
            TraceEvent::TimerCancel { .. } => EventKind::TimerCancel,
        }
    }

    /// Virtual time of the event, nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match *self {
            TraceEvent::Enqueue { t_ns, .. }
            | TraceEvent::Dequeue { t_ns, .. }
            | TraceEvent::EcnMark { t_ns, .. }
            | TraceEvent::Drop { t_ns, .. }
            | TraceEvent::CreditSent { t_ns, .. }
            | TraceEvent::CreditWasted { t_ns, .. }
            | TraceEvent::Retransmit { t_ns, .. }
            | TraceEvent::Rto { t_ns, .. }
            | TraceEvent::TimerCancel { t_ns, .. } => t_ns,
        }
    }

    /// One JSON object on one line (no trailing newline). All fields are
    /// numbers or fixed enum names, so no string escaping is needed.
    pub fn to_json_line(&self) -> String {
        let k = self.kind().name();
        match *self {
            TraceEvent::Enqueue {
                t_ns,
                queue,
                flow,
                seq,
                bytes_after,
            }
            | TraceEvent::Dequeue {
                t_ns,
                queue,
                flow,
                seq,
                bytes_after,
            } => format!(
                "{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"queue\":{queue},\"flow\":{flow},\"seq\":{seq},\"bytes_after\":{bytes_after}}}"
            ),
            TraceEvent::EcnMark {
                t_ns,
                queue,
                flow,
                seq,
            } => format!(
                "{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"queue\":{queue},\"flow\":{flow},\"seq\":{seq}}}"
            ),
            TraceEvent::Drop {
                t_ns,
                node,
                flow,
                seq,
                cause,
            } => format!(
                "{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"node\":{node},\"flow\":{flow},\"seq\":{seq},\"cause\":\"{}\"}}",
                cause.name()
            ),
            TraceEvent::CreditSent { t_ns, flow, idx } => {
                format!("{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"flow\":{flow},\"idx\":{idx}}}")
            }
            TraceEvent::CreditWasted { t_ns, flow } => {
                format!("{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"flow\":{flow}}}")
            }
            TraceEvent::Retransmit { t_ns, flow, seq } => {
                format!("{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"flow\":{flow},\"seq\":{seq}}}")
            }
            TraceEvent::Rto {
                t_ns,
                flow,
                backoff,
            } => format!(
                "{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"flow\":{flow},\"backoff\":{backoff}}}"
            ),
            TraceEvent::TimerCancel { t_ns, flow, kind } => format!(
                "{{\"kind\":\"{k}\",\"t_ns\":{t_ns},\"flow\":{flow},\"timer_kind\":{kind}}}"
            ),
        }
    }

    /// Parses one line produced by [`TraceEvent::to_json_line`]. Returns
    /// `None` for blank lines, unknown kinds (e.g. the telemetry `summary`
    /// line), or missing fields.
    pub fn parse_json_line(line: &str) -> Option<TraceEvent> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let kind = EventKind::from_name(json_str(line, "kind")?)?;
        let t_ns = json_u64(line, "t_ns")?;
        Some(match kind {
            EventKind::Enqueue => TraceEvent::Enqueue {
                t_ns,
                queue: json_u64(line, "queue")?,
                flow: json_u64(line, "flow")?,
                seq: json_i64(line, "seq")?,
                bytes_after: json_u64(line, "bytes_after")?,
            },
            EventKind::Dequeue => TraceEvent::Dequeue {
                t_ns,
                queue: json_u64(line, "queue")?,
                flow: json_u64(line, "flow")?,
                seq: json_i64(line, "seq")?,
                bytes_after: json_u64(line, "bytes_after")?,
            },
            EventKind::EcnMark => TraceEvent::EcnMark {
                t_ns,
                queue: json_u64(line, "queue")?,
                flow: json_u64(line, "flow")?,
                seq: json_i64(line, "seq")?,
            },
            EventKind::Drop => TraceEvent::Drop {
                t_ns,
                node: json_u64(line, "node")?,
                flow: json_u64(line, "flow")?,
                seq: json_i64(line, "seq")?,
                cause: DropCause::from_name(json_str(line, "cause")?)?,
            },
            EventKind::CreditSent => TraceEvent::CreditSent {
                t_ns,
                flow: json_u64(line, "flow")?,
                idx: json_u64(line, "idx")?,
            },
            EventKind::CreditWasted => TraceEvent::CreditWasted {
                t_ns,
                flow: json_u64(line, "flow")?,
            },
            EventKind::Retransmit => TraceEvent::Retransmit {
                t_ns,
                flow: json_u64(line, "flow")?,
                seq: json_i64(line, "seq")?,
            },
            EventKind::Rto => TraceEvent::Rto {
                t_ns,
                flow: json_u64(line, "flow")?,
                backoff: json_u64(line, "backoff")? as u32,
            },
            EventKind::TimerCancel => TraceEvent::TimerCancel {
                t_ns,
                flow: json_u64(line, "flow")?,
                kind: json_u64(line, "timer_kind")? as u16,
            },
        })
    }
}

/// Returns the raw value slice for `"key":` in a flat JSON object line.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

fn json_i64(line: &str, key: &str) -> Option<i64> {
    json_raw(line, key)?.parse().ok()
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    json_raw(line, key)?
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
}

/// Which event kinds a tracer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFilter {
    mask: u16,
}

impl Default for TraceFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl TraceFilter {
    /// Records everything.
    pub fn all() -> Self {
        TraceFilter { mask: u16::MAX }
    }

    /// Parses a comma-separated list of kind names (see
    /// [`EventKind::name`]). Empty or `all` records everything.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "all" {
            return Ok(Self::all());
        }
        let mut mask = 0u16;
        for part in spec.split(',') {
            let part = part.trim();
            match EventKind::from_name(part) {
                Some(k) => mask |= k.bit(),
                None => {
                    let known: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                    return Err(format!(
                        "unknown trace event kind '{part}' (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
        Ok(TraceFilter { mask })
    }

    /// Whether `kind` passes the filter.
    pub fn allows(&self, kind: EventKind) -> bool {
        self.mask & kind.bit() != 0
    }
}

/// The result of a traced run.
#[derive(Clone, Debug)]
pub struct TraceLog {
    /// Recorded events in time order (the newest `capacity` of them).
    pub events: Vec<TraceEvent>,
    /// Events that passed the filter, including evicted ones.
    pub total: u64,
    /// Oldest events evicted by the ring buffer.
    pub dropped_oldest: u64,
    /// Ring capacity the tracer ran with.
    pub capacity: usize,
}

impl TraceLog {
    /// Serializes every event as JSON Lines (one object per line, trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parses JSONL text, skipping blank or non-event lines. Returns the
    /// events plus the number of skipped non-blank lines.
    pub fn parse_jsonl(text: &str) -> (Vec<TraceEvent>, usize) {
        let mut events = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match TraceEvent::parse_json_line(line) {
                Some(ev) => events.push(ev),
                None => skipped += 1,
            }
        }
        (events, skipped)
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events recorded ({} total, {} evicted)",
            self.events.len(),
            self.total,
            self.dropped_oldest
        )
    }
}

struct Tracer {
    clock_ns: u64,
    filter: TraceFilter,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    total: u64,
    dropped_oldest: u64,
}

impl Tracer {
    fn record(&mut self, ev: TraceEvent) {
        if !self.filter.allows(ev.kind()) {
            return;
        }
        self.total += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped_oldest += 1;
        }
        self.ring.push_back(ev);
    }
}

thread_local! {
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    static NEXT_QUEUE: RefCell<u64> = const { RefCell::new(0) };
}

/// Installs a tracer on this thread with the default ring capacity.
/// Replaces any previous tracer and resets queue-id allocation.
pub fn install(filter: TraceFilter) {
    install_with_capacity(DEFAULT_CAPACITY, filter);
}

/// Installs a tracer with an explicit ring capacity.
pub fn install_with_capacity(capacity: usize, filter: TraceFilter) {
    let capacity = capacity.max(1);
    NEXT_QUEUE.with(|n| *n.borrow_mut() = 0);
    TRACER.with(|t| {
        *t.borrow_mut() = Some(Tracer {
            clock_ns: 0,
            filter,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
            dropped_oldest: 0,
        });
    });
}

/// Whether a tracer is installed on this thread.
pub fn is_active() -> bool {
    TRACER.with(|t| t.borrow().is_some())
}

/// Uninstalls the tracer and returns its log.
///
/// # Panics
/// Panics if no tracer is installed (`install` was never called, or
/// `finish` was called twice).
pub fn finish() -> TraceLog {
    let tracer = TRACER
        .with(|t| t.borrow_mut().take())
        .expect("simtrace::finish() without a matching install()");
    TraceLog {
        events: tracer.ring.into_iter().collect(),
        total: tracer.total,
        dropped_oldest: tracer.dropped_oldest,
        capacity: tracer.capacity,
    }
}

/// Allocates the next queue id (creation order). Stable within a run as
/// long as the simulation is built after `install`.
pub fn new_queue_id() -> QueueId {
    NEXT_QUEUE.with(|n| {
        let mut n = n.borrow_mut();
        let id = *n;
        *n += 1;
        QueueId(id)
    })
}

fn with_tracer(f: impl FnOnce(&mut Tracer)) {
    TRACER.with(|t| {
        if let Some(tracer) = t.borrow_mut().as_mut() {
            f(tracer);
        }
    });
}

/// Advances the tracer clock; called once per dispatched simulation event.
pub fn on_event_time(t_ns: u64) {
    with_tracer(|t| t.clock_ns = t_ns);
}

/// Records a queue admission.
pub fn on_enqueue(queue: QueueId, flow: u64, seq: i64, bytes_after: u64) {
    with_tracer(|t| {
        let ev = TraceEvent::Enqueue {
            t_ns: t.clock_ns,
            queue: queue.0,
            flow,
            seq,
            bytes_after,
        };
        t.record(ev);
    });
}

/// Records a queue departure.
pub fn on_dequeue(queue: QueueId, flow: u64, seq: i64, bytes_after: u64) {
    with_tracer(|t| {
        let ev = TraceEvent::Dequeue {
            t_ns: t.clock_ns,
            queue: queue.0,
            flow,
            seq,
            bytes_after,
        };
        t.record(ev);
    });
}

/// Records an ECN mark.
pub fn on_ecn_mark(queue: QueueId, flow: u64, seq: i64) {
    with_tracer(|t| {
        let ev = TraceEvent::EcnMark {
            t_ns: t.clock_ns,
            queue: queue.0,
            flow,
            seq,
        };
        t.record(ev);
    });
}

/// Records a packet drop.
pub fn on_drop(node: u64, flow: u64, seq: i64, cause: DropCause) {
    with_tracer(|t| {
        let ev = TraceEvent::Drop {
            t_ns: t.clock_ns,
            node,
            flow,
            seq,
            cause,
        };
        t.record(ev);
    });
}

/// Records a credit send.
pub fn on_credit_sent(flow: u64, idx: u64) {
    with_tracer(|t| {
        let ev = TraceEvent::CreditSent {
            t_ns: t.clock_ns,
            flow,
            idx,
        };
        t.record(ev);
    });
}

/// Records a wasted credit.
pub fn on_credit_wasted(flow: u64) {
    with_tracer(|t| {
        let ev = TraceEvent::CreditWasted {
            t_ns: t.clock_ns,
            flow,
        };
        t.record(ev);
    });
}

/// Records a retransmission.
pub fn on_retransmit(flow: u64, seq: i64) {
    with_tracer(|t| {
        let ev = TraceEvent::Retransmit {
            t_ns: t.clock_ns,
            flow,
            seq,
        };
        t.record(ev);
    });
}

/// Records a retransmission-timeout fire.
pub fn on_rto(flow: u64, backoff: u32) {
    with_tracer(|t| {
        let ev = TraceEvent::Rto {
            t_ns: t.clock_ns,
            flow,
            backoff,
        };
        t.record(ev);
    });
}

/// Records a timer cancellation.
pub fn on_timer_cancel(flow: u64, kind: u16) {
    with_tracer(|t| {
        let ev = TraceEvent::TimerCancel {
            t_ns: t.clock_ns,
            flow,
            kind,
        };
        t.record(ev);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueue {
                t_ns: 10,
                queue: 3,
                flow: 7,
                seq: 0,
                bytes_after: 1538,
            },
            TraceEvent::Dequeue {
                t_ns: 11,
                queue: 3,
                flow: 7,
                seq: 0,
                bytes_after: 0,
            },
            TraceEvent::EcnMark {
                t_ns: 12,
                queue: 3,
                flow: 7,
                seq: 5,
            },
            TraceEvent::Drop {
                t_ns: 13,
                node: 9,
                flow: 7,
                seq: -1,
                cause: DropCause::SelectiveRed,
            },
            TraceEvent::CreditSent {
                t_ns: 14,
                flow: 8,
                idx: 42,
            },
            TraceEvent::CreditWasted { t_ns: 15, flow: 8 },
            TraceEvent::Retransmit {
                t_ns: 16,
                flow: 7,
                seq: 5,
            },
            TraceEvent::Rto {
                t_ns: 17,
                flow: 7,
                backoff: 2,
            },
            TraceEvent::TimerCancel {
                t_ns: 18,
                flow: 7,
                kind: 1,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for ev in sample_events() {
            let line = ev.to_json_line();
            let back =
                TraceEvent::parse_json_line(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(ev, back, "line: {line}");
        }
    }

    #[test]
    fn parse_skips_blank_and_foreign_lines() {
        let text = "\n{\"kind\":\"summary\",\"bins\":3}\n{\"kind\":\"rto\",\"t_ns\":1,\"flow\":2,\"backoff\":0}\nnot json\n";
        let (events, skipped) = TraceLog::parse_jsonl(text);
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            TraceEvent::Rto {
                t_ns: 1,
                flow: 2,
                backoff: 0
            }
        );
        assert_eq!(skipped, 2);
    }

    #[test]
    fn install_record_finish_lifecycle() {
        assert!(!is_active());
        install(TraceFilter::all());
        assert!(is_active());
        on_event_time(100);
        on_enqueue(new_queue_id(), 1, 0, 1538);
        on_event_time(200);
        on_credit_wasted(1);
        let log = finish();
        assert!(!is_active());
        assert_eq!(log.total, 2);
        assert_eq!(log.dropped_oldest, 0);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].t_ns(), 100);
        assert_eq!(log.events[1].t_ns(), 200);
        // Queue ids restart at zero on the next install.
        install(TraceFilter::all());
        assert_eq!(new_queue_id(), QueueId(0));
        let _ = finish();
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_evictions() {
        install_with_capacity(4, TraceFilter::all());
        for i in 0..10u64 {
            on_event_time(i);
            on_credit_wasted(i);
        }
        let log = finish();
        assert_eq!(log.total, 10);
        assert_eq!(log.dropped_oldest, 6);
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.events[0].t_ns(), 6);
        assert_eq!(log.events[3].t_ns(), 9);
    }

    #[test]
    fn filter_parse_and_apply() {
        let f = TraceFilter::parse("drop, retransmit").expect("valid");
        assert!(f.allows(EventKind::Drop));
        assert!(f.allows(EventKind::Retransmit));
        assert!(!f.allows(EventKind::Enqueue));
        assert!(TraceFilter::parse("")
            .expect("empty")
            .allows(EventKind::Rto));
        assert!(TraceFilter::parse("all")
            .expect("all")
            .allows(EventKind::EcnMark));
        assert!(TraceFilter::parse("bogus").is_err());

        install(f);
        on_event_time(1);
        on_enqueue(QueueId(0), 1, 0, 100); // filtered out
        on_drop(2, 1, 0, DropCause::QueueCap);
        let log = finish();
        assert_eq!(log.total, 1);
        assert_eq!(log.events[0].kind(), EventKind::Drop);
    }

    #[test]
    fn hooks_are_inert_without_install() {
        // Must not panic or leak state.
        on_event_time(5);
        on_enqueue(QueueId(1), 1, 0, 10);
        on_drop(0, 1, 0, DropCause::Buffer);
        assert!(!is_active());
    }
}
