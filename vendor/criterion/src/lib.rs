//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The container has no network access, so the real `criterion` cannot be
//! fetched. This crate implements the subset of its API the workspace's
//! benches use (`criterion_group!` with `config =`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `Throughput`) and runs
//! each benchmark for the configured sample count, printing mean wall time
//! per iteration. There is no statistical analysis, warm-up discrimination,
//! or HTML report — just enough to keep `cargo bench` compiling and useful
//! as a smoke-plus-timing harness.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Soft cap on total measurement time (iterations stop early past it).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Number of untimed warm-up iterations is derived from this budget
    /// (at most one iteration here — this is a smoke harness).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` as the benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Entry point used by `criterion_main!`.
    pub fn final_summary(&self) {}
}

/// Per-iteration work unit counts, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mean = run_bench(self.criterion, &full, &mut f);
        if let (Some(t), Some(mean)) = (self.throughput, mean) {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Elements(n) => {
                        println!("    thrpt: {:.3} Melem/s", n as f64 / secs / 1e6)
                    }
                    Throughput::Bytes(n) => {
                        println!(
                            "    thrpt: {:.3} MiB/s",
                            n as f64 / secs / (1024.0 * 1024.0)
                        )
                    }
                }
            }
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f` for the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// An opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, f: &mut F) -> Option<Duration> {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: c.sample_size,
        budget: c.measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id}: no samples");
        return None;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        b.samples.len()
    );
    Some(mean)
}

/// Declares a benchmark group; both the plain and `config =` forms are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(example, bench_example);

    #[test]
    fn group_runs() {
        example();
    }
}
