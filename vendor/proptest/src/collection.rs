//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing a `Vec` of values from `elem` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + rng.next_below(span.max(1)) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
