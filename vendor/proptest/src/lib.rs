//! A small, dependency-free, deterministic stand-in for the `proptest` crate.
//!
//! The container used to grow this repository has no network access, so the
//! real `proptest` cannot be fetched. This crate implements exactly the API
//! surface the workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] ... }`
//! * numeric range strategies (`0u64..1000`, `0.05f64..0.95`, ...)
//! * `prop::sample::select(vec![...])`
//! * `prop::collection::vec(strategy, size_range)`
//! * `Just`, `prop_map`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!
//! Unlike the real proptest there is **no shrinking**: a failing case panics
//! with the case number, and cases are fully deterministic — the per-case RNG
//! is seeded from a hash of the test's module path, name, and case index, so
//! a failure always reproduces bit-for-bit. That determinism is a feature
//! here: this workspace's whole test philosophy (see DESIGN.md "Determinism &
//! invariants") is that the same inputs always produce the same run.

pub mod collection;
pub mod config;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The user-facing prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs every test case body, panicking (with the case number) on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* $vis:vis fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                let __config: $crate::config::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)*
                    #[allow(unused_mut)]
                    let mut __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks one of several strategies uniformly per case.
///
/// Only the unweighted form is supported; all arms must yield the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::sample::select(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -2.5f64..2.5, n in 1usize..9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(xs in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn select_picks_members(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
