//! Test-runner configuration.

/// Mirrors `proptest::test_runner::Config` for the fields this workspace
/// uses. The case count can be overridden globally with the
/// `PROPTEST_CASES` environment variable, like the real crate.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(64)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}
