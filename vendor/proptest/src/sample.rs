//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects one element of a non-empty vector per case.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty set");
    Select { options }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
