//! The deterministic per-case random source.

/// A splitmix64-seeded xorshift generator. Each test case gets an
/// independent stream derived from the test's fully qualified name and the
/// case index, so failures reproduce without recording a seed.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the test name, mixed with the case index.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        TestRng {
            state: seed_for(name, case),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
