//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can produce a random value of its output type.
///
/// Unlike the real proptest there is no value tree and no shrinking; a
/// strategy maps an RNG directly to a value.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a dependent strategy from each value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<T: ?Sized + Strategy> Strategy for &T {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: ?Sized + Strategy> Strategy for Box<T> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy behind a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` macro).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end as u64 - self.start as u64;
        loop {
            let v = self.start as u64 + rng.next_below(span);
            if let Some(c) = char::from_u32(v as u32) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// A full-domain strategy for `T` (the `any::<T>()` entry point).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Marker returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// An unconstrained strategy over all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e9 - 1e9
    }
}
