//! Behavioural integration tests for the comparison schemes and the
//! FlexPass variants on the testbed topology.

use flexpass::config::{CreditPolicy, FlexPassConfig};
use flexpass::profiles::{flexpass_profile, host_variant, naive_profile, ProfileParams};
use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::Topology;

fn flow(id: u64, src: usize, dst: usize, size: u64, start_us: u64) -> FlowSpec {
    FlowSpec {
        id,
        src,
        dst,
        size: flexpass_simcore::units::Bytes::new(size),
        start: Time::from_micros(start_us),
        tag: 0,
        fg: false,
    }
}

fn star(profile: &flexpass_simnet::switch::SwitchProfile, n: usize) -> Topology {
    let host = host_variant(profile);
    Topology::star(n, profile.port.rate, TimeDelta::micros(5), profile, &host)
}

/// The Layering scheme completes reliably and wastes credits whenever its
/// window gate is closed (the §6.2 explanation for its poor performance).
#[test]
fn layering_scheme_completes_and_gates() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = naive_profile(&params);
    let topo = star(&profile, 3);
    let factory = SchemeFactory::new(
        Scheme::Layering,
        Deployment::full(3),
        FlexPassConfig::new(0.5),
        1.0,
    );
    let mut sim = Sim::new(topo, Box::new(factory), Recorder::new());
    sim.schedule_flow(flow(1, 0, 2, 5_000_000, 0));
    sim.run_to_completion(TimeDelta::millis(20));
    let rec = &sim.observer;
    assert_eq!(rec.completed(), 1);
    let tx = rec.tx_by_tag.values().next().copied().unwrap_or_default();
    // LY's window cannot keep up with full-rate credits: some are wasted
    // even with no competing traffic.
    assert!(tx.credits_wasted > 0, "LY should gate credits");
}

/// The RC3-splitting variant completes but buffers far more out-of-order
/// bytes than stock FlexPass on the same flow (Figure 5a's reason for
/// rejecting it).
#[test]
fn rc3_variant_needs_bigger_reorder_buffer() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let run = |cfg: FlexPassConfig| {
        let topo = star(&profile, 3);
        let mut sim = Sim::new(topo, Box::new(FlexPassFactory::new(cfg)), Recorder::new());
        sim.schedule_flow(flow(1, 0, 2, 8_000_000, 0));
        sim.run_to_completion(TimeDelta::millis(20));
        assert_eq!(sim.observer.completed(), 1);
        sim.observer.flows[0].reorder_peak
    };
    let stock = run(FlexPassConfig::new(0.5));
    let rc3 = run(FlexPassConfig::rc3_splitting(0.5));
    assert!(
        rc3 > stock.max(1) * 10,
        "RC3 reorder peak {rc3} should dwarf stock {stock}"
    );
    // RC3 buffers a large fraction of the flow (the paper: ~half).
    assert!(rc3 > 1_000_000, "RC3 reorder peak only {rc3} bytes");
}

/// The alternative-queueing variant (reactive sub-flow in Q2) still
/// completes; Figure 5(b) only claims it performs worse, which the
/// experiment harness measures.
#[test]
fn alt_queueing_variant_completes() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let topo = star(&profile, 3);
    let mut sim = Sim::new(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::alternative_queueing(
            0.5,
        ))),
        Recorder::new(),
    );
    sim.schedule_flow(flow(1, 0, 2, 2_000_000, 0));
    sim.schedule_flow(flow(2, 1, 2, 2_000_000, 0));
    sim.run_to_completion(TimeDelta::millis(20));
    assert_eq!(sim.observer.completed(), 2);
}

/// pHost-style fixed-rate credits (the §4.3 extensibility point) complete
/// a flow at the guaranteed rate without the feedback loop.
#[test]
fn fixed_rate_credit_policy_works() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let topo = star(&profile, 3);
    let cfg = FlexPassConfig {
        credit_policy: CreditPolicy::FixedRate,
        ..FlexPassConfig::new(0.5)
    };
    let mut sim = Sim::new(topo, Box::new(FlexPassFactory::new(cfg)), Recorder::new());
    sim.schedule_flow(flow(1, 0, 2, 5_000_000, 0));
    sim.run_to_completion(TimeDelta::millis(20));
    let rec = &sim.observer;
    assert_eq!(rec.completed(), 1);
    assert_eq!(rec.total_timeouts(), 0);
    // 5 MB at >= w_q x 10G (plus reactive) finishes well under 10 ms.
    assert!(rec.flows[0].fct < 0.010, "FCT {}", rec.flows[0].fct);
}

/// Disabling first-RTT reactive transmission makes short flows strictly
/// slower (they wait one RTT for credits, like plain ExpressPass).
#[test]
fn first_rtt_reactive_helps_short_flows() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let run = |cfg: FlexPassConfig| {
        let topo = star(&profile, 3);
        let mut sim = Sim::new(topo, Box::new(FlexPassFactory::new(cfg)), Recorder::new());
        sim.schedule_flow(flow(1, 0, 2, 14_600, 0));
        sim.run_to_completion(TimeDelta::millis(10));
        sim.observer.flows[0].fct
    };
    let with = run(FlexPassConfig::new(0.5));
    let without = run(FlexPassConfig {
        reactive_first_rtt: false,
        ..FlexPassConfig::new(0.5)
    });
    assert!(
        with < without,
        "first-RTT reactive should win: {with} vs {without}"
    );
}
