//! End-to-end integration tests: full transports over the Clos fabric.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
use flexpass::schemes::{Deployment, Scheme, SchemeFactory, TAG_LEGACY, TAG_UPGRADED};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::{ClosParams, Topology};
use flexpass_workload::{background, BackgroundParams, FlowSizeCdf};

fn clos_flows(n: usize, seed: u64) -> (ClosParams, Vec<flexpass_simnet::packet::FlowSpec>) {
    let clos = ClosParams::small();
    let flows = background(
        &FlowSizeCdf::web_search().truncate(10_000_000.0),
        &BackgroundParams {
            n_hosts: clos.n_hosts(),
            host_rate: clos.link_rate,
            oversub: 3.0,
            load: 0.5,
            n_flows: n,
            seed,
            first_id: 0,
        },
    );
    (clos, flows)
}

/// Every flow completes under full FlexPass deployment, with zero
/// retransmission timeouts and bounded redundancy.
#[test]
fn flexpass_full_deployment_completes_cleanly() {
    let (clos, flows) = clos_flows(200, 42);
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let mut sim = Sim::new(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        Recorder::new(),
    );
    for f in &flows {
        sim.schedule_flow(*f);
    }
    sim.run_to_completion(TimeDelta::millis(20));
    let rec = &sim.observer;
    assert_eq!(rec.completed(), 200);
    assert_eq!(rec.total_timeouts(), 0, "FlexPass timed out");
    // §4.2: proactive retransmission redundancy stays small.
    assert!(
        rec.redundancy_fraction() < 0.05,
        "redundancy {:.3}",
        rec.redundancy_fraction()
    );
}

/// Mid-rollout (50 % of racks), every scheme completes all flows and the
/// upgraded flows' small-flow tail is no worse than 3x the legacy tail.
#[test]
fn mid_rollout_all_schemes_complete() {
    for scheme in Scheme::ALL {
        let (clos, mut flows) = clos_flows(150, 7);
        let rack_of: Vec<usize> = (0..clos.n_hosts())
            .map(|h| h / clos.hosts_per_tor)
            .collect();
        let mut rng = SimRng::new(3);
        let deployment = Deployment::by_rack_ratio(&rack_of, 0.5, &mut rng);
        for f in &mut flows {
            f.tag = deployment.tag_for(f);
        }
        let frac = deployment.upgraded_byte_fraction(&flows);
        let params = ProfileParams::simulation(clos.link_rate);
        let profile = scheme.profile(&params, frac);
        let host = host_variant(&profile);
        let topo = Topology::clos(clos, &profile, &host);
        let factory = SchemeFactory::new(scheme, deployment, FlexPassConfig::new(0.5), frac);
        let mut sim = Sim::new(topo, Box::new(factory), Recorder::new());
        for f in &flows {
            sim.schedule_flow(*f);
        }
        sim.run_to_completion(TimeDelta::millis(20));
        assert_eq!(
            sim.observer.completed(),
            150,
            "{} lost flows",
            scheme.label()
        );
        let legacy = sim.observer.fct_stats(|r| r.tag == TAG_LEGACY);
        let upgraded = sim.observer.fct_stats(|r| r.tag == TAG_UPGRADED);
        assert!(legacy.count > 0 && upgraded.count > 0);
    }
}

/// Simulation runs are exactly reproducible.
#[test]
fn deterministic_end_to_end() {
    let run = || {
        let (clos, flows) = clos_flows(100, 11);
        let params = ProfileParams::simulation(clos.link_rate);
        let profile = flexpass_profile(&params);
        let host = host_variant(&profile);
        let topo = Topology::clos(clos, &profile, &host);
        let mut sim = Sim::new(
            topo,
            Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
            Recorder::new(),
        );
        for f in &flows {
            sim.schedule_flow(*f);
        }
        sim.run_to_completion(TimeDelta::millis(20));
        let mut fcts: Vec<(u64, u64)> = sim
            .observer
            .flows
            .iter()
            .map(|r| (r.flow, (r.fct * 1e12) as u64))
            .collect();
        fcts.sort_unstable();
        fcts
    };
    assert_eq!(run(), run());
}

/// Byte conservation: the sum of delivered application bytes equals the
/// sum of flow sizes (no phantom or missing data).
#[test]
fn byte_conservation() {
    let (clos, flows) = clos_flows(120, 23);
    let expected: u64 = flows.iter().map(|f| f.size.get()).sum();
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let mut sim = Sim::new(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        Recorder::new(),
    );
    for f in &flows {
        sim.schedule_flow(*f);
    }
    sim.run_to_completion(TimeDelta::millis(20));
    let delivered: u64 = sim.observer.flows.iter().map(|r| r.size).sum();
    assert_eq!(delivered, expected);
}
