//! Cross-crate integration tests for the paper's coexistence claims
//! (§2.2 motivation and §6.1 testbed results).

use flexpass_experiments::fig1::steady_share;
use flexpass_experiments::fig9::{run_ep_vs_dctcp, run_fp_vs_dctcp, starvation};

/// §2.2 / Figure 9(a): a naive ExpressPass rollout starves a competing
/// DCTCP flow to a few percent of the link.
#[test]
fn naive_expresspass_starves_dctcp() {
    let rec = run_ep_vs_dctcp();
    let dctcp = steady_share(&rec, 0, 90);
    let ep = steady_share(&rec, 1, 90);
    assert!(ep > 8.0, "ExpressPass should dominate; got {ep:.2} Gbps");
    assert!(dctcp < 1.5, "DCTCP should be starved; got {dctcp:.2} Gbps");
    // Paper: 96.86 % starvation time for the legacy flow.
    assert!(
        starvation(&rec, 0) > 0.9,
        "legacy starvation fraction {}",
        starvation(&rec, 0)
    );
}

/// Figure 9(b, c): under FlexPass the legacy flow and the upgraded flow
/// each hold about half the link and neither is ever starved.
#[test]
fn flexpass_shares_link_with_dctcp() {
    let rec = run_fp_vs_dctcp();
    let dctcp = steady_share(&rec, 0, 90);
    let fp = steady_share(&rec, 1, 90);
    // Paper: 51 % / 48 %.
    assert!(
        (3.5..6.5).contains(&dctcp),
        "DCTCP share {dctcp:.2} Gbps not balanced"
    );
    assert!(
        (3.5..6.5).contains(&fp),
        "FlexPass share {fp:.2} Gbps not balanced"
    );
    assert!(starvation(&rec, 0) < 0.01, "legacy starved under FlexPass");
    assert!(starvation(&rec, 1) < 0.01, "FlexPass starved");
}
