//! Integration tests for the Figure-7 sub-flow bandwidth claims.

use flexpass_experiments::fig7::{fig7a, fig7b, fig7c, steady_subflow_gbps};
use flexpass_experiments::fig9::run_fp_vs_dctcp;
use flexpass_metrics::Recorder;
use flexpass_simnet::packet::Subflow;

fn steady(rec: &Recorder, tag: u32) -> f64 {
    let tp = rec.throughput_gbps(tag);
    let lo = tp.len() / 2;
    if lo >= tp.len() {
        return 0.0;
    }
    tp[lo..].iter().sum::<f64>() / (tp.len() - lo) as f64
}

/// Figure 7(a): alone on the link, the proactive sub-flow takes about w_q
/// of the capacity and the reactive sub-flow soaks up the rest; together
/// they saturate the link.
#[test]
fn single_flexpass_flow_uses_both_subflows() {
    // Rebuild the scenario through the public experiment API.
    let _ = fig7a(); // Smoke-checks the CSV path.
    let rec = flexpass_experiments::fig9::run_fp_vs_dctcp();
    let _ = rec;
    // Direct assertion via fig7 helpers requires the recorder; re-run:
    let rec = run_scenario_a();
    let pro = steady_subflow_gbps(&rec, Subflow::Proactive, 45);
    let rea = steady_subflow_gbps(&rec, Subflow::Reactive, 45);
    assert!(
        (3.5..5.5).contains(&pro),
        "proactive should hold ~w_q of 10G, got {pro:.2}"
    );
    assert!(
        (3.5..6.0).contains(&rea),
        "reactive should fill the spare half, got {rea:.2}"
    );
    assert!(pro + rea > 8.5, "link underutilized: {:.2}", pro + rea);
}

fn run_scenario_a() -> Recorder {
    use flexpass::config::FlexPassConfig;
    use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
    use flexpass::schemes::{Deployment, Scheme, SchemeFactory};
    use flexpass_simcore::time::{Rate, Time, TimeDelta};
    use flexpass_simnet::packet::FlowSpec;
    use flexpass_simnet::sim::Sim;
    use flexpass_simnet::topology::Topology;

    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);
    let topo = Topology::star(3, params.rate, TimeDelta::micros(5), &profile, &host);
    let factory = SchemeFactory::new(
        Scheme::FlexPass,
        Deployment::full(3),
        FlexPassConfig::new(0.5),
        0.5,
    );
    let mut sim = Sim::new(
        topo,
        Box::new(factory),
        Recorder::new().with_throughput(TimeDelta::millis(1)),
    );
    sim.schedule_flow(FlowSpec {
        id: 1,
        src: 0,
        dst: 2,
        size: flexpass_simcore::units::Bytes::new(500_000_000),
        start: Time::ZERO,
        tag: 1,
        fg: false,
    });
    sim.run_until(Time::from_millis(45));
    sim.observer
}

/// Figure 7(c): against a legacy DCTCP flow, FlexPass holds its guaranteed
/// half almost entirely through the proactive sub-flow; the reactive
/// sub-flow finds essentially no spare bandwidth.
#[test]
fn flexpass_vs_dctcp_reactive_starves() {
    let rec = run_fp_vs_dctcp();
    let dctcp = steady(&rec, 0);
    let pro = steady_subflow_gbps(&rec, Subflow::Proactive, 90);
    let rea = steady_subflow_gbps(&rec, Subflow::Reactive, 90);
    assert!((3.5..6.0).contains(&dctcp), "DCTCP {dctcp:.2}");
    assert!((3.5..6.0).contains(&pro), "proactive {pro:.2}");
    assert!(
        rea < 1.0,
        "reactive should find no spare bandwidth, got {rea:.2}"
    );
}

/// The fig7 scenario builders produce non-empty, well-formed CSV tables.
#[test]
fn fig7_csvs_well_formed() {
    for r in [fig7a(), fig7b(), fig7c()] {
        assert!(!r.csv.is_empty(), "{} empty", r.name);
        let text = r.csv.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("time_ms,"));
        assert!(lines.len() >= 45);
    }
}
