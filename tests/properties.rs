//! Property-based tests over the substrate and transports.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::rng::SimRng;
use flexpass_simcore::stats::Percentiles;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simcore::units::{Bytes, PktCount};
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::Topology;
use flexpass_transport::common::{AckBuilder, Reassembly};
use flexpass_transport::dctcp::DctcpFactory;
use flexpass_workload::FlowSizeCdf;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reassembly delivers exactly once for any arrival order with
    /// arbitrary duplication, and the reorder peak never exceeds the flow
    /// size.
    #[test]
    fn reassembly_any_order(seed in 0u64..1000, n in 1u32..200, dup_rate in 0.0f64..0.5) {
        let size = Bytes::new(1460) * u64::from(n);
        let mut r = Reassembly::new(size, PktCount::new(n));
        let mut rng = SimRng::new(seed);
        let mut order: Vec<u32> = (0..n).collect();
        for i in (1..order.len()).rev() {
            let j = rng.index(i + 1);
            order.swap(i, j);
        }
        let mut delivered = 0;
        for &s in &order {
            if r.on_packet(s) {
                delivered += 1;
            }
            if rng.chance(dup_rate) {
                prop_assert!(!r.on_packet(s), "duplicate accepted");
            }
        }
        prop_assert_eq!(delivered, n);
        prop_assert!(r.complete());
        prop_assert!(r.reorder_peak() <= size);
    }

    /// The ACK builder's cumulative pointer equals the first missing
    /// sequence, and SACK ranges only cover received packets.
    #[test]
    fn ack_builder_invariants(seed in 0u64..1000, n in 1u32..300, frac in 0.1f64..1.0) {
        let mut a = AckBuilder::new(n);
        let mut rng = SimRng::new(seed);
        let mut got = vec![false; n as usize];
        let mut last = 0u32;
        for s in 0..n {
            if rng.chance(frac) {
                a.on_packet(s);
                got[s as usize] = true;
                last = s;
            }
        }
        let first_missing = got.iter().position(|&g| !g).map(|p| p as u32).unwrap_or(n);
        prop_assert_eq!(a.cum(), first_missing.min(a.cum().max(first_missing)));
        if got[last as usize] {
            let ack = a.build(flexpass_simnet::packet::Subflow::Only, false, last, last);
            for k in 0..ack.sack_n as usize {
                let (lo, hi) = ack.sack[k];
                prop_assert!(lo < hi);
                for s in lo..hi {
                    prop_assert!(got[s as usize], "SACK covers missing packet {s}");
                }
            }
            // The first block contains the most recent arrival.
            if last >= ack.cum {
                let (lo, hi) = ack.sack[0];
                prop_assert!(lo <= last && last < hi);
            }
        }
    }

    /// Exact percentiles are order statistics: p0 = min, p100 = max,
    /// monotone in q.
    #[test]
    fn percentile_properties(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut p = Percentiles::new();
        for &x in &xs {
            p.push(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(p.quantile(0.0), xs[0]);
        prop_assert_eq!(p.quantile(1.0), *xs.last().unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = p.quantile(i as f64 / 10.0);
            prop_assert!(v >= prev);
            prev = v;
        }
    }
}

proptest! {
    // Whole-simulation properties are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any random small workload completes reliably under both DCTCP and
    /// FlexPass on the testbed star, with every byte delivered exactly once.
    #[test]
    fn random_workloads_always_complete(seed in 0u64..10_000) {
        let params = ProfileParams::testbed(Rate::from_gbps(10));
        let profile = flexpass_profile(&params);
        let host = host_variant(&profile);
        let mut rng = SimRng::new(seed);
        let cdf = FlowSizeCdf::hadoop();
        let mut flows = Vec::new();
        for i in 0..30u64 {
            let src = rng.index(8);
            let mut dst = rng.index(7);
            if dst >= src {
                dst += 1;
            }
            flows.push(FlowSpec {
                id: i,
                src,
                dst,
                size: Bytes::new(cdf.sample(&mut rng).min(500_000)),
                start: Time::from_nanos(rng.next_below(2_000_000)),
                tag: 0,
                fg: false,
            });
        }

        // FlexPass.
        let topo = Topology::star(9, params.rate, TimeDelta::micros(5), &profile, &host);
        let mut sim = Sim::new(
            topo,
            Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
            Recorder::new(),
        );
        for fl in &flows {
            sim.schedule_flow(*fl);
        }
        sim.run_to_completion(TimeDelta::millis(10));
        prop_assert_eq!(sim.observer.completed(), 30);

        // DCTCP on the same workload.
        let dprofile = flexpass::profiles::dctcp_profile(&params);
        let topo = Topology::star(9, params.rate, TimeDelta::micros(5), &dprofile, &dprofile);
        let mut sim = Sim::new(topo, Box::new(DctcpFactory::new()), Recorder::new());
        for fl in &flows {
            sim.schedule_flow(*fl);
        }
        sim.run_to_completion(TimeDelta::millis(10));
        prop_assert_eq!(sim.observer.completed(), 30);
    }
}
