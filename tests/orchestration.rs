//! Tier-1 guarantees of the experiment orchestration layer: the worker
//! pool must not change results (byte-identical CSV for any `--jobs`
//! value) and must isolate panicking points instead of killing the sweep.

use flexpass::schemes::Scheme;
use flexpass_experiments::orchestrate;
use flexpass_experiments::runner::RunScale;
use flexpass_experiments::sweep::{run_sweep_jobs, to_csv, SweepSpec};
use flexpass_workload::FlowSizeCdf;

/// 2 schemes x 2 ratios x 2 seeds = 8 points, each a few thousand events.
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        schemes: vec![Scheme::Naive, Scheme::FlexPass],
        ratios: vec![0.0, 0.5],
        cdf: FlowSizeCdf::web_search(),
        load: 0.5,
        mixed: false,
        scale: RunScale::Smoke,
        seed: 3,
        wq: 0.5,
        sel_drop: 150_000,
        n_flows: Some(30),
        seeds: 2,
    }
}

/// The tentpole determinism claim: each point is a deterministic
/// single-threaded simulation and results reassemble in spec order, so
/// the rendered CSV must be byte-identical whether the pool runs 1 or 4
/// workers.
#[test]
fn jobs_do_not_change_output() {
    let spec = tiny_spec();
    let serial = to_csv(&run_sweep_jobs(1, "jobs1", &spec)).render();
    let parallel = to_csv(&run_sweep_jobs(4, "jobs4", &spec)).render();
    assert_eq!(
        serial, parallel,
        "CSV differs between --jobs 1 and --jobs 4"
    );
    // Sanity: the table actually carries data (header + 4 cells).
    assert_eq!(serial.lines().count(), 5);
}

/// A panicking point must not take down the sweep: the other points
/// complete, the failed seed is dropped from its cell (surviving seeds
/// still aggregate), and the failure is recorded for the exit code.
#[test]
fn panicking_point_is_isolated() {
    let spec = tiny_spec();
    let victim = "iso:flexpass:r0.50:s1";
    orchestrate::inject_panic(Some(victim.to_string()));
    let points = run_sweep_jobs(2, "iso", &spec);
    orchestrate::inject_panic(None);

    // Every cell still produced a row, in spec order.
    assert_eq!(points.len(), 4);
    let labels: Vec<(&str, f64)> = points.iter().map(|p| (p.scheme, p.ratio)).collect();
    assert_eq!(
        labels,
        vec![
            ("naive", 0.0),
            ("naive", 0.5),
            ("flexpass", 0.0),
            ("flexpass", 0.5)
        ]
    );
    // The victim cell aggregated its surviving seed — real data, not NaN.
    assert!(points.iter().all(|p| p.flows > 0.0));

    // The failure was recorded with its qualified label and the panic
    // message, for the binary's exit-code report.
    let failures = orchestrate::take_failures();
    assert!(
        failures.iter().any(|f| f.label == victim),
        "no failure recorded for {victim}: {failures:?}"
    );
}
