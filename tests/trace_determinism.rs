//! Packet-lifecycle tracing must be observation-only (DESIGN.md "Packet-
//! lifecycle tracing"): a traced run and an untraced run of the same
//! scenario under the same seed must agree on every observable, bit for
//! bit, and the trace itself must round-trip through its JSONL encoding.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::{Recorder, Telemetry};
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::{ClosParams, Topology};
use flexpass_simnet::trace;
use flexpass_workload::{background, BackgroundParams, FlowSizeCdf};

/// A run's complete observable outcome; FCTs compared by bit pattern (see
/// `tests/determinism.rs`).
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    events: u64,
    end_ns: u64,
    completed: usize,
    fcts: Vec<(u64, u64)>,
    drops: Vec<u64>,
}

fn run_smoke(seed: u64) -> Digest {
    let clos = ClosParams::small();
    let flows = background(
        &FlowSizeCdf::web_search().truncate(5_000_000.0),
        &BackgroundParams {
            n_hosts: clos.n_hosts(),
            host_rate: clos.link_rate,
            oversub: 3.0,
            load: 0.5,
            n_flows: 80,
            seed,
            first_id: 0,
        },
    );
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let mut sim = Sim::new(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        Recorder::new(),
    );
    for f in &flows {
        sim.schedule_flow(*f);
    }
    sim.run_to_completion(TimeDelta::millis(20));
    let mut fcts: Vec<(u64, u64)> = sim
        .observer
        .flows
        .iter()
        .map(|r| (r.flow, r.fct.to_bits()))
        .collect();
    fcts.sort_unstable();
    Digest {
        events: sim.events_processed(),
        end_ns: sim.now().as_nanos(),
        completed: sim.observer.completed(),
        fcts,
        drops: sim.observer.drops.values().copied().collect(),
    }
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let plain = run_smoke(7);
    assert!(plain.events > 0 && plain.completed > 0, "scenario ran");

    trace::install(trace::TraceFilter::all());
    let traced = run_smoke(7);
    let log = trace::finish();

    assert_eq!(plain, traced, "tracing changed simulation results");
    assert!(log.total > 0, "tracer observed nothing");
    assert!(!log.events.is_empty());

    // The captured log must survive its own JSONL encoding...
    let jsonl = log.to_jsonl();
    let (parsed, skipped) = trace::TraceLog::parse_jsonl(&jsonl);
    assert_eq!(skipped, 0, "unparseable lines in fresh trace");
    assert_eq!(parsed, log.events, "JSONL round trip altered events");

    // ...and feed the telemetry aggregation.
    let tel = Telemetry::from_events(&log.events, TimeDelta::micros(100));
    assert!(tel.bins() > 0);
    assert!(tel.enqueues.iter().sum::<u64>() > 0, "no enqueues folded");
    assert!(!tel.queue_peak_depth.is_empty(), "no queue depth series");
}

#[test]
fn filtered_trace_records_only_requested_kinds() {
    let filter = trace::TraceFilter::parse("drop,retransmit").expect("valid spec");
    trace::install(filter);
    let _ = run_smoke(11);
    let log = trace::finish();
    for ev in &log.events {
        let kind = ev.kind().name();
        assert!(
            kind == "drop" || kind == "retransmit",
            "filter leaked a {kind} event"
        );
    }
}
