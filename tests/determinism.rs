//! Determinism and conservation harness (DESIGN.md "Determinism &
//! invariants").
//!
//! Two runs of the same scenario under the same seed must agree on every
//! observable — event count, final virtual time, and each flow's completion
//! time to the bit — and an audited run must report zero invariant
//! violations.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::TimeDelta;
use flexpass_simnet::audit;
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::{ClosParams, Topology};
use flexpass_workload::{background, BackgroundParams, FlowSizeCdf};

/// A run's complete observable outcome. FCTs are compared by bit pattern:
/// "close enough" is exactly the wiggle room determinism does not allow.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    events: u64,
    end_ns: u64,
    completed: usize,
    fcts: Vec<(u64, u64)>,
    drops: Vec<u64>,
}

fn run_smoke(seed: u64) -> Digest {
    let clos = ClosParams::small();
    let flows = background(
        &FlowSizeCdf::web_search().truncate(5_000_000.0),
        &BackgroundParams {
            n_hosts: clos.n_hosts(),
            host_rate: clos.link_rate,
            oversub: 3.0,
            load: 0.5,
            n_flows: 80,
            seed,
            first_id: 0,
        },
    );
    let params = ProfileParams::simulation(clos.link_rate);
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);
    let topo = Topology::clos(clos, &profile, &host);
    let mut sim = Sim::new(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        Recorder::new(),
    );
    for f in &flows {
        sim.schedule_flow(*f);
    }
    sim.run_to_completion(TimeDelta::millis(20));
    let mut fcts: Vec<(u64, u64)> = sim
        .observer
        .flows
        .iter()
        .map(|r| (r.flow, r.fct.to_bits()))
        .collect();
    fcts.sort_unstable();
    Digest {
        events: sim.events_processed(),
        end_ns: sim.now().as_nanos(),
        completed: sim.observer.completed(),
        fcts,
        drops: sim.observer.drops.values().copied().collect(),
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = run_smoke(7);
    let b = run_smoke(7);
    assert!(a.events > 0 && a.completed > 0, "scenario ran: {a:?}");
    assert_eq!(a, b, "same seed diverged");
}

#[test]
fn audited_run_reports_zero_violations() {
    audit::install();
    let d = run_smoke(11);
    let report = audit::finish();
    assert!(d.completed > 0, "scenario ran: {d:?}");
    assert!(report.is_clean(), "invariant violations:\n{report}");
    // The hooks must actually have observed traffic, or a clean report
    // proves nothing.
    let c = report.counters;
    assert!(c.events > 0, "no events audited");
    assert!(
        c.enqueues > 0 && c.dequeues > 0,
        "no queue activity audited"
    );
    assert!(c.flow_rx_bytes > 0, "no delivered bytes audited");
}
