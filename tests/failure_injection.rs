//! Failure-injection tests for §4.3 "Handling proactive data packet
//! losses": non-congestion losses (switch failures, corruption) must be
//! recovered by every transport, and FlexPass's proactive sub-flow must
//! recover its own losses with the highest transmission priority.

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{
    dctcp_profile, flexpass_profile, host_variant, naive_profile, ProfileParams,
};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::{Sim, TransportFactory};
use flexpass_simnet::topology::Topology;
use flexpass_transport::dctcp::DctcpFactory;
use flexpass_transport::expresspass::ExpressPassFactory;

fn flows(n: u64, size: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            id: i,
            src: (i % 4) as usize,
            dst: 4 + (i % 3) as usize,
            size: flexpass_simcore::units::Bytes::new(size),
            start: Time::from_micros(i * 40),
            tag: 0,
            fg: false,
        })
        .collect()
}

fn run_with_loss(
    factory: Box<dyn TransportFactory>,
    profile: &flexpass_simnet::switch::SwitchProfile,
    loss: f64,
) -> Recorder {
    let host = host_variant(profile);
    let topo = Topology::star(8, profile.port.rate, TimeDelta::micros(5), profile, &host);
    let mut sim = Sim::new(topo, factory, Recorder::new());
    sim.inject_loss(loss, 77);
    for f in flows(24, 400_000) {
        sim.schedule_flow(f);
    }
    sim.run_to_completion(TimeDelta::millis(50));
    assert!(sim.injected_losses() > 0, "loss injector never fired");
    sim.observer
}

/// FlexPass completes every flow under 0.2 % random non-congestion loss:
/// proactive losses are detected per sub-flow and retransmitted with the
/// highest credit priority, reactive losses recover via the proactive
/// channel.
#[test]
fn flexpass_recovers_from_noncongestion_loss() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let rec = run_with_loss(
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        &flexpass_profile(&params),
        0.002,
    );
    assert_eq!(rec.completed(), 24);
    // Recovery traffic exists but stays a small fraction of the volume.
    assert!(
        rec.redundancy_fraction() < 0.10,
        "redundancy {}",
        rec.redundancy_fraction()
    );
}

/// ExpressPass and DCTCP also survive the same loss process.
#[test]
fn baselines_recover_from_noncongestion_loss() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let rec = run_with_loss(
        Box::new(ExpressPassFactory::new()),
        &naive_profile(&params),
        0.002,
    );
    assert_eq!(rec.completed(), 24);
    let rec = run_with_loss(
        Box::new(DctcpFactory::new()),
        &dctcp_profile(&params),
        0.002,
    );
    assert_eq!(rec.completed(), 24);
}

/// Heavier loss (1 %) still completes — recovery paths compose (dupack,
/// SACK sweep, proactive retransmission, sub-flow RTO, full-stall RTO).
#[test]
fn flexpass_survives_heavy_loss() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let rec = run_with_loss(
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        &flexpass_profile(&params),
        0.01,
    );
    assert_eq!(rec.completed(), 24);
}

/// The loss injector is deterministic: identical seeds drop identical
/// packets and yield identical FCTs.
#[test]
fn loss_injection_deterministic() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let run = || {
        let rec = run_with_loss(
            Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
            &flexpass_profile(&params),
            0.005,
        );
        let mut v: Vec<(u64, u64)> = rec
            .flows
            .iter()
            .map(|r| (r.flow, (r.fct * 1e12) as u64))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(run(), run());
}
