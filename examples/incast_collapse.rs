//! Incast microbenchmark (the paper's Figure 8): an 8-to-1 incast of 64 kB
//! responses with an increasing number of flows. DCTCP eventually suffers
//! retransmission timeouts; credit-scheduled transports do not.
//!
//! ```text
//! cargo run --release --example incast_collapse
//! ```

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{dctcp_profile, flexpass_profile, naive_profile, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_experiments::fig8::run_incast;
use flexpass_simcore::time::Rate;
use flexpass_transport::dctcp::DctcpFactory;
use flexpass_transport::expresspass::ExpressPassFactory;

fn main() {
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    println!(
        "{:>8} | {:>22} | {:>22} | {:>22}",
        "flows", "DCTCP", "ExpressPass", "FlexPass"
    );
    println!("{:->8}-+-{:->22}-+-{:->22}-+-{:->22}", "", "", "", "");
    for n in [8usize, 24, 48, 72, 96] {
        let (d_fct, d_to) =
            run_incast(&dctcp_profile(&params), Box::new(DctcpFactory::new()), n, 0);
        let (e_fct, e_to) = run_incast(
            &naive_profile(&params),
            Box::new(ExpressPassFactory::new()),
            n,
            0,
        );
        let (f_fct, f_to) = run_incast(
            &flexpass_profile(&params),
            Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
            n,
            0,
        );
        let cell = |fct: f64, to: u64| format!("{:>7.2} ms, {:>3} rto", fct * 1e3, to);
        println!(
            "{n:>8} | {:>22} | {:>22} | {:>22}",
            cell(d_fct, d_to),
            cell(e_fct, e_to),
            cell(f_fct, f_to)
        );
    }
    println!();
    println!("DCTCP needs retransmission timeouts once the fan-in overwhelms the");
    println!("switch buffer; ExpressPass and FlexPass schedule every arrival with");
    println!("credits and never time out (the paper's zero-timeout property).");
}
