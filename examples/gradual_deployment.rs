//! Gradual deployment (the paper's Figure 10, reduced scale): roll
//! FlexPass out rack by rack over a Clos fabric running a web-search
//! workload and watch small-flow tail FCT by flow type.
//!
//! ```text
//! cargo run --release --example gradual_deployment
//! ```

use flexpass::schemes::Scheme;
use flexpass_experiments::runner::RunScale;
use flexpass_experiments::sweep::{run_point, SweepSpec};
use flexpass_workload::FlowSizeCdf;

fn main() {
    let spec = SweepSpec {
        schemes: vec![Scheme::FlexPass],
        ratios: vec![],
        cdf: FlowSizeCdf::web_search(),
        load: 0.5,
        mixed: false,
        scale: RunScale::Smoke,
        seed: 1,
        wq: 0.5,
        sel_drop: 150_000,
        n_flows: None,
        seeds: 1,
    };
    println!(
        "FlexPass rollout over a {}-host Clos, web-search workload @ 50 % core load",
        spec.scale.clos().n_hosts()
    );
    println!();
    println!(
        "{:>8} | {:>16} | {:>16} | {:>16}",
        "deploy %", "p99 small (all)", "p99 small legacy", "p99 small FlexPass"
    );
    println!("{:->8}-+-{:->16}-+-{:->16}-+-{:->16}", "", "", "", "");
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let p = run_point(Scheme::FlexPass, ratio, &spec);
        let ms = |v: f64| {
            if v == 0.0 {
                "-".to_string()
            } else {
                format!("{:.3} ms", v * 1e3)
            }
        };
        println!(
            "{:>7.0}% | {:>16} | {:>16} | {:>16}",
            ratio * 100.0,
            ms(p.p99_small[0]),
            ms(p.p99_small[1]),
            ms(p.p99_small[2]),
        );
    }
    println!();
    println!("Upgraded flows gain the proactive transport's tail latency while");
    println!("legacy flows keep their guaranteed queue share throughout the rollout.");
}
