//! Quickstart: run one FlexPass flow over the testbed topology and print
//! its completion time and how the two sub-flows shared the work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::packet::{FlowSpec, Subflow};
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::Topology;

fn main() {
    // 1. Switch/NIC configuration: the paper's testbed profile (10 Gbps,
    //    w_q = 0.5, ECN at 60 kB, selective dropping at 100 kB).
    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);

    // 2. Topology: three hosts behind one switch.
    let topo = Topology::star(3, params.rate, TimeDelta::micros(5), &profile, &host);

    // 3. Transport: FlexPass everywhere.
    let factory = FlexPassFactory::new(FlexPassConfig::new(0.5));

    // 4. One 10 MB flow from host 0 to host 2, with throughput recording.
    let mut sim = Sim::new(
        topo,
        Box::new(factory),
        Recorder::new().with_throughput(TimeDelta::millis(1)),
    );
    sim.schedule_flow(FlowSpec {
        id: 1,
        src: 0,
        dst: 2,
        size: flexpass_simcore::units::Bytes::new(10_000_000),
        start: Time::ZERO,
        tag: 0,
        fg: false,
    });
    sim.run_to_completion(TimeDelta::millis(5));

    // 5. Report.
    let rec = &sim.observer;
    let flow = &rec.flows[0];
    println!(
        "flow completed: {} bytes in {:.3} ms",
        flow.size,
        flow.fct * 1e3
    );
    let sum = |sub: Subflow| -> f64 {
        rec.series((0, sub))
            .map(|s| s.bins().iter().sum::<f64>())
            .unwrap_or(0.0)
    };
    let pro = sum(Subflow::Proactive);
    let rea = sum(Subflow::Reactive);
    println!(
        "delivered via proactive sub-flow: {:.1} MB ({:.0} %)",
        pro / 1e6,
        100.0 * pro / (pro + rea)
    );
    println!(
        "delivered via reactive  sub-flow: {:.1} MB ({:.0} %)",
        rea / 1e6,
        100.0 * rea / (pro + rea)
    );
    let tx = rec.tx_by_tag.get(&0).copied().unwrap_or_default();
    println!(
        "sender: {} data packets, {} credits received, {} wasted, {} timeouts",
        tx.data_pkts, tx.credits_received, tx.credits_wasted, tx.timeouts
    );
    assert_eq!(rec.total_timeouts(), 0, "FlexPass should not time out here");
}
