//! Run a simulation under the runtime invariant auditor and print its
//! report: audited event/queue/flow counters plus any conservation or
//! ordering violations (DESIGN.md "Determinism & invariants").
//!
//! ```text
//! cargo run --release --example audit_report
//! ```

use flexpass::config::FlexPassConfig;
use flexpass::profiles::{flexpass_profile, host_variant, ProfileParams};
use flexpass::FlexPassFactory;
use flexpass_metrics::Recorder;
use flexpass_simcore::time::{Rate, Time, TimeDelta};
use flexpass_simnet::audit;
use flexpass_simnet::packet::FlowSpec;
use flexpass_simnet::sim::Sim;
use flexpass_simnet::topology::Topology;

fn main() {
    // Arm the auditor for this thread before building the simulation, so
    // component ids and every hook from the first event are captured.
    audit::install();

    let params = ProfileParams::testbed(Rate::from_gbps(10));
    let profile = flexpass_profile(&params);
    let host = host_variant(&profile);
    let topo = Topology::star(4, params.rate, TimeDelta::micros(5), &profile, &host);
    let mut sim = Sim::new(
        topo,
        Box::new(FlexPassFactory::new(FlexPassConfig::new(0.5))),
        Recorder::new(),
    );
    // A small incast: three senders into host 3.
    for (id, src) in [(1u64, 0usize), (2, 1), (3, 2)] {
        sim.schedule_flow(FlowSpec {
            id,
            src,
            dst: 3,
            size: flexpass_simcore::units::Bytes::new(2_000_000),
            start: Time::ZERO,
            tag: 0,
            fg: false,
        });
    }
    sim.run_to_completion(TimeDelta::millis(20));

    let report = audit::finish();
    println!(
        "flows completed: {} / 3 in {:?} ({} events)",
        sim.observer.completed(),
        sim.now(),
        sim.events_processed()
    );
    println!("{report}");
    if !report.is_clean() {
        std::process::exit(1);
    }
}
