//! Coexistence microbenchmark (the paper's Figure 9): one legacy DCTCP
//! flow and one upgraded flow share a 10 Gbps link. With a naive
//! ExpressPass rollout the legacy flow starves; with FlexPass the two
//! split the link evenly.
//!
//! ```text
//! cargo run --release --example coexistence_microbench
//! ```

use flexpass_experiments::fig9::{run_ep_vs_dctcp, run_fp_vs_dctcp, starvation};

fn main() {
    println!("running ExpressPass vs DCTCP (naive shared-queue rollout)...");
    let ep = run_ep_vs_dctcp();
    println!("running FlexPass vs DCTCP (w_q = 0.5 switch configuration)...");
    let fp = run_fp_vs_dctcp();

    let mean = |rec: &flexpass_metrics::Recorder, tag: u32| -> f64 {
        let tp = rec.throughput_gbps(tag);
        let lo = tp.len() / 2;
        tp[lo..].iter().sum::<f64>() / (tp.len() - lo).max(1) as f64
    };

    println!();
    println!("steady-state throughput on the 10 Gbps bottleneck:");
    println!(
        "  ExpressPass rollout: DCTCP {:>5.2} Gbps | ExpressPass {:>5.2} Gbps",
        mean(&ep, 0),
        mean(&ep, 1)
    );
    println!(
        "  FlexPass rollout:    DCTCP {:>5.2} Gbps | FlexPass    {:>5.2} Gbps",
        mean(&fp, 0),
        mean(&fp, 1)
    );
    println!();
    println!("starvation time (share of time below 20 % of the link):");
    println!(
        "  under ExpressPass: DCTCP starved {:.1} % of the time",
        100.0 * starvation(&ep, 0)
    );
    println!(
        "  under FlexPass:    DCTCP starved {:.1} % of the time",
        100.0 * starvation(&fp, 0)
    );
}
